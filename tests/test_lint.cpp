// Linter tests: rule registry, per-rule clean/violating pairs on minimal
// hand-built netlists, the checked bench parser and its malformed-input
// corpus, the JSON report, the trojan screen against real insertions, and the
// end-to-end front-door wiring (pipeline stage 0, session sidecar, campaign
// quarantine).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/lint.hpp"
#include "analysis/rare_nets.hpp"
#include "bench_gen/library.hpp"
#include "bench_gen/random_circuit.hpp"
#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "netlist/bench_io.hpp"
#include "sat/oracle.hpp"
#include "trojan/trojan.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace deterrent::analysis {
namespace {

namespace fs = std::filesystem;

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

bool has_rule(const LintReport& report, std::string_view rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const LintDiagnostic& d) { return d.rule == rule; });
}

const LintDiagnostic* find_rule(const LintReport& report, std::string_view rule) {
  for (const auto& d : report.diagnostics)
    if (d.rule == rule) return &d;
  return nullptr;
}

std::string rules_of(const LintReport& report) {
  std::string out;
  for (const auto& d : report.diagnostics) out += d.rule + " [" + d.net_name + "]; ";
  return out;
}

/// INPUT(a) INPUT(b) → y = AND(a, b) → OUTPUT(y): the smallest netlist every
/// rule agrees is clean.
Netlist tiny_clean() {
  NetlistBuilder b;
  const NetId a = b.declare("a"), bb = b.declare("b"), y = b.declare("y");
  b.define_input(a);
  b.define_input(bb);
  b.define_gate(y, GateType::And, {a, bb});
  b.mark_output(y);
  return b.build();
}

// ------------------------------------------------------- rule registry -----

TEST(LintRegistry, CatalogHasUniqueIdsAndBothTiers) {
  const auto rules = lint_rules();
  ASSERT_GE(rules.size(), 12u);
  bool saw_drc = false, saw_trojan = false, saw_parse = false;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    for (std::size_t j = i + 1; j < rules.size(); ++j)
      EXPECT_STRNE(rules[i].id, rules[j].id);
    if (std::string_view(rules[i].tier) == "drc") saw_drc = true;
    if (std::string_view(rules[i].tier) == "trojan") saw_trojan = true;
    if (std::string_view(rules[i].tier) == "parse") saw_parse = true;
  }
  EXPECT_TRUE(saw_drc);
  EXPECT_TRUE(saw_trojan);
  EXPECT_TRUE(saw_parse);
}

TEST(LintRegistry, FindLintRule) {
  const LintRule* rule = find_lint_rule("drc.cycle");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->severity, LintSeverity::Error);
  EXPECT_EQ(find_lint_rule("no.such.rule"), nullptr);
}

TEST(LintConfigTest, DisabledListAndUnknownIds) {
  LintConfig cfg;
  EXPECT_TRUE(cfg.rule_enabled("drc.dangling"));
  cfg.disabled = {"drc.dangling", "not-a-rule"};
  EXPECT_FALSE(cfg.rule_enabled("drc.dangling"));
  EXPECT_TRUE(cfg.rule_enabled("drc.cycle"));
}

// ------------------------------------------------------- report basics -----

TEST(LintReportTest, CountsSummaryAndRejects) {
  LintReport report;
  report.diagnostics.push_back({"drc.cycle", LintSeverity::Error, 0, "x", 0, "m"});
  report.diagnostics.push_back({"drc.dangling", LintSeverity::Warning, 1, "y", 0, "m"});
  report.diagnostics.push_back({"drc.const-logic", LintSeverity::Info, 2, "z", 0, "m"});
  EXPECT_EQ(report.errors(), 1u);
  EXPECT_EQ(report.warnings(), 1u);
  EXPECT_EQ(report.infos(), 1u);
  EXPECT_TRUE(report.rejects(LintSeverity::Error));
  EXPECT_TRUE(report.rejects(LintSeverity::Info));
  EXPECT_EQ(report.summary(), "1 error, 1 warning, 1 info");

  LintReport clean;
  EXPECT_FALSE(clean.rejects(LintSeverity::Info));
  EXPECT_EQ(clean.summary(), "clean");
}

TEST(LintReportTest, JsonShapeAndEscaping) {
  LintReport report;
  report.diagnostics.push_back(
      {"drc.dangling", LintSeverity::Warning, 3, "we\"ird\\name", 7, "tab\there"});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);

  LintReport clean;
  EXPECT_NE(clean.to_json().find("\"clean\":true"), std::string::npos);
}

TEST(Linter, CleanNetlistProducesNoDiagnostics) {
  const LintReport report = Linter().lint(tiny_clean());
  EXPECT_TRUE(report.diagnostics.empty()) << rules_of(report);
}

// ---------------------------------------------------- DRC rule pairs -------

TEST(LintRuleNoOutputs, FiresOnlyWithoutOutputs) {
  NetlistBuilder b;
  const NetId a = b.declare("a"), y = b.declare("y");
  b.define_input(a);
  b.define_gate(y, GateType::Not, {a});
  const LintReport bad = Linter().lint(b.build());
  EXPECT_TRUE(has_rule(bad, "drc.no-outputs")) << rules_of(bad);
  EXPECT_FALSE(has_rule(Linter().lint(tiny_clean()), "drc.no-outputs"));
}

TEST(LintRuleUnusedInput, FiresOnlyOnUnconsumedInput) {
  NetlistBuilder b;
  const NetId a = b.declare("a"), unused = b.declare("unused"), y = b.declare("y");
  b.define_input(a);
  b.define_input(unused);
  b.define_gate(y, GateType::Not, {a});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  const LintDiagnostic* d = find_rule(bad, "drc.unused-input");
  ASSERT_NE(d, nullptr) << rules_of(bad);
  EXPECT_EQ(d->net_name, "unused");
  EXPECT_FALSE(has_rule(Linter().lint(tiny_clean()), "drc.unused-input"));
}

TEST(LintRuleDangling, FiresOnlyOnFanoutFreeInternalNet) {
  NetlistBuilder b;
  const NetId a = b.declare("a"), bb = b.declare("b");
  const NetId y = b.declare("y"), stub = b.declare("stub");
  b.define_input(a);
  b.define_input(bb);
  b.define_gate(y, GateType::And, {a, bb});
  b.define_gate(stub, GateType::Or, {a, bb});  // no consumers, not an output
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  const LintDiagnostic* d = find_rule(bad, "drc.dangling");
  ASSERT_NE(d, nullptr) << rules_of(bad);
  EXPECT_EQ(d->net_name, "stub");
  EXPECT_FALSE(has_rule(Linter().lint(tiny_clean()), "drc.dangling"));
}

TEST(LintRuleDeadCone, FiresOnlyOnConsumedButUnreachableLogic) {
  NetlistBuilder b;
  const NetId a = b.declare("a"), bb = b.declare("b"), y = b.declare("y");
  const NetId dead = b.declare("dead"), sink = b.declare("sink");
  b.define_input(a);
  b.define_input(bb);
  b.define_gate(y, GateType::And, {a, bb});
  // `dead` HAS a consumer (`sink`), but the cone never reaches an output —
  // that consumer is what separates dead-cone from plain dangling.
  b.define_gate(dead, GateType::Or, {a, bb});
  b.define_gate(sink, GateType::Not, {dead});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  const LintDiagnostic* d = find_rule(bad, "drc.dead-cone");
  ASSERT_NE(d, nullptr) << rules_of(bad);
  EXPECT_EQ(d->net_name, "dead");
  EXPECT_FALSE(has_rule(Linter().lint(tiny_clean()), "drc.dead-cone"));
}

TEST(LintRuleConstLogic, FiresOnlyOnConstantGates) {
  NetlistBuilder b;
  const NetId a = b.declare("a"), zero = b.declare("zero");
  const NetId g = b.declare("g"), y = b.declare("y");
  b.define_input(a);
  b.define_gate(zero, GateType::Const0, {});
  b.define_gate(g, GateType::And, {a, zero});  // constant 0 under propagation
  b.define_gate(y, GateType::Or, {g, a});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  const LintDiagnostic* d = find_rule(bad, "drc.const-logic");
  ASSERT_NE(d, nullptr) << rules_of(bad);
  EXPECT_EQ(d->net_name, "g");
  EXPECT_FALSE(has_rule(Linter().lint(tiny_clean()), "drc.const-logic"));
}

TEST(LintRuleConstOutput, FiresOnlyOnConstantPrimaryOutput) {
  // Ternary propagation is structural, so XOR(a, a) stays X; feed the output
  // from an explicit constant instead.
  NetlistBuilder b;
  const NetId a = b.declare("a"), zero = b.declare("zero"), y = b.declare("y");
  b.define_input(a);
  b.define_gate(zero, GateType::Const0, {});
  b.define_gate(y, GateType::And, {a, zero});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  const LintDiagnostic* d = find_rule(bad, "drc.const-output");
  ASSERT_NE(d, nullptr) << rules_of(bad);
  EXPECT_EQ(d->net_name, "y");
  EXPECT_FALSE(has_rule(Linter().lint(tiny_clean()), "drc.const-output"));
}

TEST(LintRuleDffConst, FiresOnConstantDAndOnSelfLoop) {
  NetlistBuilder b;
  const NetId one = b.declare("one"), q = b.declare("q"), y = b.declare("y");
  b.define_gate(one, GateType::Const1, {});
  b.define_dff(q, one);
  b.define_gate(y, GateType::Buf, {q});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  EXPECT_TRUE(has_rule(bad, "drc.dff-const")) << rules_of(bad);

  NetlistBuilder s;
  const NetId q2 = s.declare("q2"), y2 = s.declare("y2");
  s.define_dff(q2, q2);  // q' = q: the register can never change value
  s.define_gate(y2, GateType::Buf, {q2});
  s.mark_output(y2);
  const LintReport loop = Linter().lint(s.build());
  EXPECT_TRUE(has_rule(loop, "drc.dff-const")) << rules_of(loop);

  NetlistBuilder ok;
  const NetId d = ok.declare("d"), q3 = ok.declare("q3"), y3 = ok.declare("y3");
  ok.define_input(d);
  ok.define_dff(q3, d);
  ok.define_gate(y3, GateType::Not, {q3});
  ok.mark_output(y3);
  EXPECT_FALSE(has_rule(Linter().lint(ok.build()), "drc.dff-const"));
}

TEST(LintRuleDffDead, FiresOnlyOnUnconsumedRegister) {
  NetlistBuilder b;
  const NetId d = b.declare("d"), q = b.declare("q"), y = b.declare("y");
  b.define_input(d);
  b.define_dff(q, d);  // no consumers, not an output
  b.define_gate(y, GateType::Buf, {d});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  const LintDiagnostic* diag = find_rule(bad, "drc.dff-dead");
  ASSERT_NE(diag, nullptr) << rules_of(bad);
  EXPECT_EQ(diag->net_name, "q");
}

TEST(LintRuleDuplicateGate, FiresOnlyOnRedundantGates) {
  NetlistBuilder b;
  const NetId a = b.declare("a"), bb = b.declare("b");
  const NetId g1 = b.declare("g1"), g2 = b.declare("g2"), y = b.declare("y");
  b.define_input(a);
  b.define_input(bb);
  b.define_gate(g1, GateType::And, {a, bb});
  b.define_gate(g2, GateType::And, {bb, a});  // same function, commuted fanins
  b.define_gate(y, GateType::Xor, {g1, g2});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  const LintDiagnostic* d = find_rule(bad, "drc.duplicate-gate");
  ASSERT_NE(d, nullptr) << rules_of(bad);
  EXPECT_EQ(d->net_name, "g2");
  EXPECT_FALSE(has_rule(Linter().lint(tiny_clean()), "drc.duplicate-gate"));
}

// ------------------------------------------------- trojan screen rules -----

/// Balanced AND tree over `width` fresh inputs; returns the root.
NetId build_and_tree(NetlistBuilder& b, unsigned width, const std::string& prefix) {
  std::vector<NetId> layer;
  for (unsigned i = 0; i < width; ++i) {
    const NetId in = b.declare(prefix + "_in" + std::to_string(i));
    b.define_input(in);
    layer.push_back(in);
  }
  unsigned next = 0;
  while (layer.size() > 1) {
    std::vector<NetId> reduced;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const NetId g = b.declare(prefix + "_and" + std::to_string(next++));
      b.define_gate(g, GateType::And, {layer[i], layer[i + 1]});
      reduced.push_back(g);
    }
    if (layer.size() % 2 == 1) reduced.push_back(layer.back());
    layer = std::move(reduced);
  }
  return layer.front();
}

TEST(LintRuleNearUnexcitable, FiresOnDeepConjunctionOnly) {
  // 25 unbiased inputs conjoined: P(1) = 2^-25 < the 2^-24 default threshold.
  NetlistBuilder b;
  const NetId root = build_and_tree(b, 25, "t");
  const NetId y = b.declare("y");
  b.define_gate(y, GateType::Buf, {root});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  EXPECT_TRUE(has_rule(bad, "trojan.near-unexcitable")) << rules_of(bad);

  // 8 inputs: P(1) = 2^-8, far above the threshold.
  NetlistBuilder ok;
  const NetId root8 = build_and_tree(ok, 8, "t");
  const NetId y8 = ok.declare("y8");
  ok.define_gate(y8, GateType::Buf, {root8});
  ok.mark_output(y8);
  EXPECT_FALSE(has_rule(Linter().lint(ok.build()), "trojan.near-unexcitable"));
}

TEST(LintRuleShadowCone, FiresOnDeepUnobservableLogicOnly) {
  // A chain of ANDs: observability of the head grows ~2 per level, so depth
  // 40 crosses a lowered threshold of 50 while the tail stays observable.
  NetlistBuilder b;
  NetId prev = b.declare("head");
  b.define_input(prev);
  for (unsigned i = 0; i < 40; ++i) {
    const NetId side = b.declare("side" + std::to_string(i));
    b.define_input(side);
    const NetId g = b.declare("chain" + std::to_string(i));
    b.define_gate(g, GateType::And, {prev, side});
    prev = g;
  }
  b.mark_output(prev);
  LintConfig cfg;
  cfg.shadow_co = 50;
  const LintReport bad = Linter(cfg).lint(b.build());
  const LintDiagnostic* d = find_rule(bad, "trojan.shadow-cone");
  ASSERT_NE(d, nullptr) << rules_of(bad);
  // The rule anchors on gates (inputs are excluded), so the first gate of
  // the chain is the least observable flagged net.
  EXPECT_EQ(d->net_name, "chain0");

  // The same netlist under the default threshold is quiet.
  NetlistBuilder b2;
  NetId prev2 = b2.declare("head");
  b2.define_input(prev2);
  for (unsigned i = 0; i < 40; ++i) {
    const NetId side = b2.declare("side" + std::to_string(i));
    b2.define_input(side);
    const NetId g = b2.declare("chain" + std::to_string(i));
    b2.define_gate(g, GateType::And, {prev2, side});
    prev2 = g;
  }
  b2.mark_output(prev2);
  EXPECT_FALSE(has_rule(Linter().lint(b2.build()), "trojan.shadow-cone"));
}

TEST(LintRuleTriggerShape, FiresOnWideRareConeFeedingOnePayload) {
  // A 16-input AND cone (activation 2^-16 <= 2^-12) XOR-ed into one payload:
  // the canonical inserted-trigger shape.
  NetlistBuilder b;
  const NetId root = build_and_tree(b, 16, "t");
  const NetId carrier = b.declare("carrier"), y = b.declare("y");
  b.define_input(carrier);
  b.define_gate(y, GateType::Xor, {carrier, root});
  b.mark_output(y);
  const LintReport bad = Linter().lint(b.build());
  const LintDiagnostic* d = find_rule(bad, "trojan.trigger-shape");
  ASSERT_NE(d, nullptr) << rules_of(bad);
  EXPECT_EQ(d->net, root);

  // A 4-input cone is ordinary decode logic: too narrow, too likely.
  NetlistBuilder ok;
  const NetId root4 = build_and_tree(ok, 4, "t");
  const NetId carrier4 = ok.declare("carrier"), y4 = ok.declare("y4");
  ok.define_input(carrier4);
  ok.define_gate(y4, GateType::Xor, {carrier4, root4});
  ok.mark_output(y4);
  EXPECT_FALSE(has_rule(Linter().lint(ok.build()), "trojan.trigger-shape"));
}

TEST(Linter, DisabledRuleIsSuppressed) {
  NetlistBuilder b;
  const NetId a = b.declare("a"), bb = b.declare("b");
  const NetId y = b.declare("y"), stub = b.declare("stub");
  b.define_input(a);
  b.define_input(bb);
  b.define_gate(y, GateType::And, {a, bb});
  b.define_gate(stub, GateType::Or, {a, bb});
  b.mark_output(y);
  const Netlist nl = b.build();
  ASSERT_TRUE(has_rule(Linter().lint(nl), "drc.dangling"));
  LintConfig cfg;
  cfg.disabled = {"drc.dangling"};
  EXPECT_FALSE(has_rule(Linter(cfg).lint(nl), "drc.dangling"));
}

TEST(Linter, MaxPerRuleCapsAndCountsSuppressed) {
  NetlistBuilder b;
  const NetId a = b.declare("a"), bb = b.declare("b"), y = b.declare("y");
  b.define_input(a);
  b.define_input(bb);
  b.define_gate(y, GateType::And, {a, bb});
  b.mark_output(y);
  for (int i = 0; i < 10; ++i)
    b.define_gate(b.declare("stub" + std::to_string(i)), GateType::Xor, {a, bb});
  LintConfig cfg;
  cfg.max_per_rule = 3;
  const LintReport report = Linter(cfg).lint(b.build());
  std::size_t dangling = 0;
  for (const auto& d : report.diagnostics)
    if (d.rule == "drc.dangling") ++dangling;
  // 3 findings + 1 summary line; the other 7 are counted as suppressed.
  EXPECT_EQ(dangling, 4u);
  EXPECT_GE(report.suppressed, 7u);
}

TEST(Linter, DeterministicReports) {
  const Netlist nl = bench_gen::load_benchmark("c2670_like").original;
  const LintReport a = Linter().lint(nl);
  const LintReport b = Linter().lint(nl);
  EXPECT_EQ(a.diagnostics, b.diagnostics);
  EXPECT_EQ(a.to_json(), b.to_json());
}

// ----------------------------------------------- checked parser bridge -----

TEST(ParseBridge, AppendParseDiagnosticsMapsCodes) {
  const auto result = netlist::read_bench_string_checked(
      "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n");
  ASSERT_FALSE(result.ok());
  LintReport report;
  append_parse_diagnostics(report, result.diagnostics, LintConfig{});
  const LintDiagnostic* d = find_rule(report, "drc.undriven");
  ASSERT_NE(d, nullptr) << rules_of(report);
  EXPECT_EQ(d->net_name, "ghost");
  EXPECT_EQ(d->severity, LintSeverity::Error);
  EXPECT_TRUE(report.rejects(LintSeverity::Error));
}

TEST(ParseBridge, UnknownCodeFallsBackToSyntax) {
  std::vector<netlist::ParseDiagnostic> diags{{3, "made.up", "n", "mystery"}};
  LintReport report;
  append_parse_diagnostics(report, diags, LintConfig{});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].rule, "parse.syntax");
  EXPECT_EQ(report.diagnostics[0].line, 3u);
}

// --------------------------------------------- malformed-input corpus ------

struct CorpusCase {
  std::string file;
  std::vector<std::string> expected;  ///< codes from the "# expect:" header
};

std::vector<CorpusCase> load_corpus() {
  const std::string dir = std::string(DETERRENT_SOURCE_DIR) + "/tests/corpus/netlist";
  std::vector<CorpusCase> cases;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".bench") continue;
    CorpusCase tc;
    tc.file = entry.path().string();
    std::ifstream in(tc.file);
    std::string header;
    std::getline(in, header);
    const auto pos = header.find("# expect:");
    EXPECT_NE(pos, std::string::npos) << tc.file << " lacks a '# expect:' header";
    std::istringstream codes(header.substr(pos + 9));
    std::string code;
    while (codes >> code) tc.expected.push_back(code);
    cases.push_back(std::move(tc));
  }
  return cases;
}

TEST(Corpus, CheckedParserMatchesExpectations) {
  const auto cases = load_corpus();
  ASSERT_GE(cases.size(), 10u);
  for (const auto& tc : cases) {
    const auto result = netlist::read_bench_file_checked(tc.file);
    if (tc.expected.empty()) {
      EXPECT_TRUE(result.ok()) << tc.file << ": "
                               << (result.diagnostics.empty()
                                       ? "?"
                                       : result.diagnostics[0].message);
      continue;
    }
    EXPECT_FALSE(result.ok()) << tc.file;
    for (const auto& code : tc.expected) {
      const bool found = std::any_of(
          result.diagnostics.begin(), result.diagnostics.end(),
          [&](const netlist::ParseDiagnostic& d) { return d.code == code; });
      EXPECT_TRUE(found) << tc.file << ": expected " << code;
    }
    // Every diagnostic names a code the registry (or parse tier) knows.
    for (const auto& d : result.diagnostics)
      EXPECT_NE(find_lint_rule(d.code), nullptr) << tc.file << ": " << d.code;
  }
}

TEST(Corpus, StrictParserThrowsOnEveryMalformedCase) {
  for (const auto& tc : load_corpus()) {
    if (tc.expected.empty()) {
      EXPECT_NO_THROW(netlist::read_bench_file(tc.file)) << tc.file;
    } else {
      EXPECT_THROW(netlist::read_bench_file(tc.file), Error) << tc.file;
    }
  }
}

// ----------------------------------------------------- differential --------

TEST(LintDifferential, EveryGeneratorLintsFreeOfErrors) {
  for (const auto& name : bench_gen::benchmark_names()) {
    const auto bench = bench_gen::load_benchmark(name);
    const LintReport report = Linter().lint(bench.original);
    EXPECT_EQ(report.errors(), 0u) << name << ": " << rules_of(report);
  }
}

TEST(LintDifferential, CombinationalProfilesHaveNoTrojanFindings) {
  // The s*-profiles deliberately synthesize deep biased AND stacks (that is
  // where the paper's rare nets come from), so the screen flagging them is
  // correct; the c*-profiles and the processor must stay quiet.
  for (const std::string name :
       {"c2670_like", "c5315_like", "c6288_like", "c7552_like", "mips16_like"}) {
    const auto bench = bench_gen::load_benchmark(name);
    const LintReport report = Linter().lint(bench.original);
    for (const auto& d : report.diagnostics)
      EXPECT_NE(d.rule.find("trojan."), 0u) << name << ": " << d.rule << " on "
                                            << d.net_name;
  }
}

TEST(LintDifferential, RoundTrippedBenchOutputStaysErrorFree) {
  const auto bench = bench_gen::load_benchmark("c5315_like");
  const auto result =
      netlist::read_bench_string_checked(netlist::write_bench_string(bench.original));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Linter().lint(*result.netlist).errors(), 0u);
}

// --------------------------------------------------- trojan insertion ------

TEST(TrojanScreen, InsertedTriggerTripsScreenWithProvenance) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 32;
  p.n_outputs = 8;
  p.n_gates = 600;
  p.seed = 18;
  const Netlist golden = bench_gen::generate_random_circuit(p);
  ASSERT_EQ(Linter().lint(golden).errors(), 0u);

  util::Rng rng(19);
  RareNetConfig rcfg;
  rcfg.threshold = 0.2;
  rcfg.sim_patterns = 1 << 12;
  const auto rare = find_rare_nets(golden, rcfg, rng);
  ASSERT_GE(rare.size(), 10u);

  sat::NetlistOracle oracle(golden);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 10;
  tcfg.count = 1;
  tcfg.max_attempts_per_trojan = 5000;
  const auto trojans = trojan::sample_trojans(golden, rare, tcfg, oracle, rng);
  ASSERT_EQ(trojans.size(), 1u);

  NetId trigger_net = netlist::kNoNet;
  const Netlist infected = trojan::apply_trojan(golden, trojans[0], &trigger_net);
  const LintReport report = Linter().lint(infected);
  bool flagged = false;
  for (const auto& d : report.diagnostics)
    if (d.rule.rfind("trojan.", 0) == 0 && d.net == trigger_net) flagged = true;
  EXPECT_TRUE(flagged) << "trigger net " << trigger_net
                       << " not flagged; report: " << rules_of(report);
}

TEST(TrojanScreen, Mips16InsertionTripsScreen) {
  const auto bench = bench_gen::load_benchmark("mips16_like");
  const Netlist& golden = bench.scan.comb;
  // The golden scan view carries no trojan-tier findings (differential above).
  util::Rng rng(7);
  RareNetConfig rcfg;
  rcfg.threshold = 0.1;
  rcfg.sim_patterns = 1 << 12;
  const auto rare = find_rare_nets(golden, rcfg, rng);
  ASSERT_GE(rare.size(), 12u);

  sat::NetlistOracle oracle(golden);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 12;
  tcfg.count = 1;
  const auto trojans = trojan::sample_trojans(golden, rare, tcfg, oracle, rng);
  ASSERT_EQ(trojans.size(), 1u);

  NetId trigger_net = netlist::kNoNet;
  const Netlist infected = trojan::apply_trojan(golden, trojans[0], &trigger_net);
  const LintReport report = Linter().lint(infected);
  const LintDiagnostic* hit = nullptr;
  for (const auto& d : report.diagnostics)
    if (d.rule.rfind("trojan.", 0) == 0 && d.net == trigger_net) hit = &d;
  ASSERT_NE(hit, nullptr) << "trigger " << trigger_net << " unflagged: "
                          << rules_of(report);
  EXPECT_GE(static_cast<int>(hit->severity), static_cast<int>(LintSeverity::Warning));
}

}  // namespace
}  // namespace deterrent::analysis

// ------------------------------------------------- front-door wiring -------

namespace deterrent::core {
namespace {

namespace fs = std::filesystem;
using analysis::LintSeverity;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

/// Combinational circuit with one dangling gate — a warning, not an error,
/// so the default front door passes it but fail_on=warning rejects it.
Netlist warned_circuit() {
  NetlistBuilder b;
  const NetId a = b.declare("a"), bb = b.declare("b");
  const NetId y = b.declare("y"), stub = b.declare("stub");
  b.define_input(a);
  b.define_input(bb);
  b.define_gate(y, GateType::Nand, {a, bb});
  b.define_gate(stub, GateType::Nor, {a, bb});
  b.mark_output(y);
  return b.build();
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("deterrent_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str() const { return path.string(); }
};

TEST(PipelineLint, FrontDoorRunsBeforeRareNetsAndPassesCleanDesigns) {
  const Netlist nl = warned_circuit();
  DeterrentConfig cfg;
  Pipeline pipeline(nl, cfg);
  EXPECT_EQ(pipeline.next_stage(), Stage::Lint);
  EXPECT_EQ(pipeline.run_lint(), StageStatus::Complete);
  EXPECT_TRUE(pipeline.lint_done());
  EXPECT_FALSE(pipeline.lint_rejected());
  EXPECT_GE(pipeline.lint_report().warnings(), 1u);
  EXPECT_EQ(pipeline.next_stage(), Stage::RareNets);
}

TEST(PipelineLint, DisabledLintSkipsStageZero) {
  const Netlist nl = warned_circuit();
  DeterrentConfig cfg;
  cfg.lint.enabled = false;
  Pipeline pipeline(nl, cfg);
  EXPECT_EQ(pipeline.next_stage(), Stage::RareNets);
  EXPECT_EQ(pipeline.run_lint(), StageStatus::Complete);
  EXPECT_FALSE(pipeline.lint_done());
}

TEST(PipelineLint, FailOnWarningRejectsAndPinsTheStage) {
  const Netlist nl = warned_circuit();
  DeterrentConfig cfg;
  cfg.lint.fail_on = LintSeverity::Warning;
  Pipeline pipeline(nl, cfg);
  EXPECT_EQ(pipeline.run_lint(), StageStatus::Rejected);
  EXPECT_TRUE(pipeline.lint_rejected());
  EXPECT_EQ(pipeline.next_stage(), Stage::Lint);  // pinned: no later stage runs
  EXPECT_EQ(pipeline.run_lint(), StageStatus::Rejected);
  EXPECT_EQ(pipeline.run_remaining(), StageStatus::Rejected);
  EXPECT_THROW(pipeline.run_rare_nets(), PermanentError);
}

TEST(PipelineLint, RareNetsRunsTheFrontDoorImplicitly) {
  const Netlist nl = warned_circuit();
  DeterrentConfig cfg;
  cfg.lint.fail_on = LintSeverity::Warning;
  Pipeline pipeline(nl, cfg);
  // Legacy prepare() flows call run_rare_nets directly; the verdict must
  // still gate them.
  EXPECT_EQ(pipeline.run_rare_nets(), StageStatus::Rejected);
  EXPECT_FALSE(pipeline.rare_nets_done());
}

TEST(PipelineLint, LintArtifactRoundTrip) {
  const Netlist nl = warned_circuit();
  DeterrentConfig cfg;
  Pipeline pipeline(nl, cfg);
  ASSERT_EQ(pipeline.run_lint(), StageStatus::Complete);

  TempDir dir("lint_rt");
  const auto exported = pipeline.export_lint();
  const std::string file = (dir.path / "lint.art").string();
  exported.save(file);
  const auto loaded = LintArtifact::load(file, pipeline.netlist_fingerprint());
  EXPECT_EQ(loaded.rejected, exported.rejected);
  EXPECT_EQ(loaded.fail_on, exported.fail_on);
  EXPECT_EQ(loaded.report.diagnostics, exported.report.diagnostics);
  EXPECT_EQ(loaded.report.suppressed, exported.report.suppressed);

  Pipeline fresh(nl, cfg);
  fresh.adopt(loaded);
  EXPECT_TRUE(fresh.lint_done());
  EXPECT_FALSE(fresh.lint_rejected());
  EXPECT_EQ(fresh.lint_report().diagnostics, pipeline.lint_report().diagnostics);
}

TEST(PipelineLint, AdoptionReappliesTheCurrentFailOn) {
  const Netlist nl = warned_circuit();
  DeterrentConfig lenient;
  Pipeline first(nl, lenient);
  ASSERT_EQ(first.run_lint(), StageStatus::Complete);

  DeterrentConfig strict;
  strict.lint.fail_on = LintSeverity::Warning;
  Pipeline second(nl, strict);
  second.adopt(first.export_lint());
  // The stored verdict was "pass", but under the stricter config the same
  // report rejects — adoption must not smuggle the design past the door.
  EXPECT_TRUE(second.lint_rejected());
}

TEST(SessionLint, VerdictPersistsAsSidecarAndSurvivesResume) {
  const Netlist nl = warned_circuit();
  TempDir dir("lint_session");
  DeterrentConfig cfg;
  cfg.lint.fail_on = LintSeverity::Warning;

  Session session(dir.str(), nl);
  session.save_config(cfg);
  auto pipeline = session.resume();
  EXPECT_EQ(pipeline->run_remaining(), StageStatus::Rejected);
  session.save(*pipeline);
  EXPECT_TRUE(session.has_lint());

  // Resume adopts the sidecar: the design stays rejected without re-linting,
  // and the report's diagnostics are still available.
  auto resumed = session.resume();
  EXPECT_TRUE(resumed->lint_done());
  EXPECT_TRUE(resumed->lint_rejected());
  EXPECT_EQ(resumed->lint_report().diagnostics, pipeline->lint_report().diagnostics);
  EXPECT_EQ(resumed->run_remaining(), StageStatus::Rejected);
}

TEST(SessionLint, CorruptSidecarIsQuarantinedWithoutEndingThePrefix) {
  const Netlist nl = warned_circuit();
  TempDir dir("lint_corrupt");
  DeterrentConfig cfg;
  Session session(dir.str(), nl);
  session.save_config(cfg);
  auto pipeline = session.resume();
  ASSERT_EQ(pipeline->run_lint(), StageStatus::Complete);
  session.save(*pipeline);
  ASSERT_TRUE(session.has_lint());

  {
    std::ofstream out(session.path(Session::kLintFile),
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  auto resumed = session.resume();
  EXPECT_FALSE(resumed->lint_done());  // verdict lost, lint will re-run
  ASSERT_EQ(session.quarantined().size(), 1u);
  EXPECT_EQ(session.quarantined()[0], Session::kLintFile);
}

TEST(CampaignLint, RejectedCircuitIsQuarantinedWithoutRetries) {
  const Netlist bad = warned_circuit();
  CampaignConfig cfg;
  cfg.base.lint.fail_on = LintSeverity::Warning;
  cfg.base.rare.sim_patterns = 1 << 8;
  cfg.base.updates = 1;
  cfg.max_retries = 3;
  cfg.retry_backoff_ms = 0.0;
  Campaign campaign(cfg);
  campaign.add("warned", bad);
  const auto report = campaign.run();
  ASSERT_EQ(report.circuits.size(), 1u);
  const auto& row = report.circuits[0];
  EXPECT_FALSE(row.ok);
  EXPECT_TRUE(row.quarantined);
  EXPECT_EQ(row.status, StageStatus::Rejected);
  EXPECT_EQ(row.attempts, 1u);  // deterministic verdict: no retry burned
  EXPECT_TRUE(row.lint_ran);
  EXPECT_GE(row.lint_warnings, 1u);
  EXPECT_NE(row.error.find("rejected by lint"), std::string::npos);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_NE(report.to_table().find("Lint"), std::string::npos);
}

}  // namespace
}  // namespace deterrent::core

#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace deterrent::sat {
namespace {

/// Exhaustive satisfiability oracle for small formulas.
bool brute_force_sat(const Cnf& cnf, std::vector<bool>* model = nullptr) {
  const std::size_t n = cnf.var_count;
  for (std::uint64_t assignment = 0; assignment < (1ULL << n); ++assignment) {
    bool all = true;
    for (const auto& clause : cnf.clauses) {
      bool sat = false;
      for (const Lit l : clause) {
        const bool value = (assignment >> var_of(l)) & 1ULL;
        if (value != sign_of(l)) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) {
      if (model != nullptr) {
        model->assign(n, false);
        for (std::size_t v = 0; v < n; ++v) (*model)[v] = (assignment >> v) & 1ULL;
      }
      return true;
    }
  }
  return false;
}

bool model_satisfies(const Solver& solver, const Cnf& cnf) {
  for (const auto& clause : cnf.clauses) {
    bool sat = false;
    for (const Lit l : clause)
      if (solver.model_value(var_of(l)) != sign_of(l)) {
        sat = true;
        break;
      }
    if (!sat) return false;
  }
  return true;
}

Solver make_solver(const Cnf& cnf) {
  Solver s;
  s.ensure_vars(cnf.var_count);
  for (const auto& clause : cnf.clauses) s.add_clause(clause);
  return s;
}

// ----------------------------------------------------------- literals ------

TEST(Types, LiteralPacking) {
  const Lit p = mk_lit(5, false);
  const Lit n = mk_lit(5, true);
  EXPECT_EQ(var_of(p), 5u);
  EXPECT_EQ(var_of(n), 5u);
  EXPECT_FALSE(sign_of(p));
  EXPECT_TRUE(sign_of(n));
  EXPECT_EQ(~p, n);
  EXPECT_EQ(~n, p);
}

TEST(Types, LitValue) {
  EXPECT_EQ(lit_value(LBool::True, mk_lit(0)), LBool::True);
  EXPECT_EQ(lit_value(LBool::True, mk_lit(0, true)), LBool::False);
  EXPECT_EQ(lit_value(LBool::False, mk_lit(0, true)), LBool::True);
  EXPECT_EQ(lit_value(LBool::Undef, mk_lit(0)), LBool::Undef);
}

// -------------------------------------------------------------- basic ------

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

TEST(Solver, SingleUnit) {
  Solver s;
  const Var v = s.new_var();
  s.add_clause({mk_lit(v)});
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(v));
}

TEST(Solver, ContradictoryUnitsUnsat) {
  Solver s;
  const Var v = s.new_var();
  EXPECT_TRUE(s.add_clause({mk_lit(v)}));
  EXPECT_FALSE(s.add_clause({mk_lit(v, true)}));
  EXPECT_FALSE(s.okay());
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Solver, SimpleImplicationChain) {
  // a, a→b, b→c  ⇒ c true.
  Solver s;
  s.ensure_vars(3);
  s.add_clause({mk_lit(0)});
  s.add_clause({mk_lit(0, true), mk_lit(1)});
  s.add_clause({mk_lit(1, true), mk_lit(2)});
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(1));
  EXPECT_TRUE(s.model_value(2));
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  s.ensure_vars(1);
  EXPECT_TRUE(s.add_clause({mk_lit(0), mk_lit(0, true)}));
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

TEST(Solver, DuplicateLiteralsCollapse) {
  Solver s;
  s.ensure_vars(2);
  s.add_clause({mk_lit(0), mk_lit(0), mk_lit(1)});
  s.add_clause({mk_lit(0, true)});
  s.add_clause({mk_lit(1, true), mk_lit(0)});
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Solver, XorChainRequiresSearch) {
  // (a⊕b)=1, (b⊕c)=1, (a⊕c)=0 — satisfiable.
  Solver s;
  s.ensure_vars(3);
  auto add_xor = [&](Var x, Var y, bool value) {
    // x ⊕ y = value encoded as two clauses over 4 combos.
    if (value) {
      s.add_clause({mk_lit(x), mk_lit(y)});
      s.add_clause({mk_lit(x, true), mk_lit(y, true)});
    } else {
      s.add_clause({mk_lit(x), mk_lit(y, true)});
      s.add_clause({mk_lit(x, true), mk_lit(y)});
    }
  };
  add_xor(0, 1, true);
  add_xor(1, 2, true);
  add_xor(0, 2, false);
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_EQ(s.model_value(0), s.model_value(2));
  EXPECT_NE(s.model_value(0), s.model_value(1));
}

TEST(Solver, PigeonholeUnsat) {
  // PHP(4,3): 4 pigeons, 3 holes — classic UNSAT requiring real search.
  const int pigeons = 4;
  const int holes = 3;
  Solver s;
  s.ensure_vars(pigeons * holes);
  auto var_at = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(var_at(p, h)));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({mk_lit(var_at(p1, h), true), mk_lit(var_at(p2, h), true)});
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Solver, PigeonholeSatWhenEqual) {
  const int n = 4;
  Solver s;
  s.ensure_vars(n * n);
  auto var_at = [&](int p, int h) { return static_cast<Var>(p * n + h); };
  for (int p = 0; p < n; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < n; ++h) clause.push_back(mk_lit(var_at(p, h)));
    s.add_clause(clause);
  }
  for (int h = 0; h < n; ++h)
    for (int p1 = 0; p1 < n; ++p1)
      for (int p2 = p1 + 1; p2 < n; ++p2)
        s.add_clause({mk_lit(var_at(p1, h), true), mk_lit(var_at(p2, h), true)});
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

// -------------------------------------------------------- assumptions ------

TEST(Solver, AssumptionsForceValues) {
  Solver s;
  s.ensure_vars(2);
  s.add_clause({mk_lit(0), mk_lit(1)});
  const Lit assume[] = {mk_lit(0, true)};
  EXPECT_EQ(s.solve(assume), Solver::Result::Sat);
  EXPECT_FALSE(s.model_value(0));
  EXPECT_TRUE(s.model_value(1));
}

TEST(Solver, AssumptionsAreTemporary) {
  Solver s;
  s.ensure_vars(1);
  const Lit neg[] = {mk_lit(0, true)};
  EXPECT_EQ(s.solve(neg), Solver::Result::Sat);
  const Lit pos[] = {mk_lit(0)};
  EXPECT_EQ(s.solve(pos), Solver::Result::Sat);  // no permanent effect
  EXPECT_TRUE(s.model_value(0));
}

TEST(Solver, ContradictingAssumptionsUnsatWithCore) {
  Solver s;
  s.ensure_vars(2);
  s.add_clause({mk_lit(0, true), mk_lit(1, true)});  // ¬a ∨ ¬b
  const Lit assume[] = {mk_lit(0), mk_lit(1)};
  EXPECT_EQ(s.solve(assume), Solver::Result::Unsat);
  EXPECT_TRUE(s.okay());  // still satisfiable without assumptions
  EXPECT_FALSE(s.conflict_core().empty());
  for (const Lit l : s.conflict_core())
    EXPECT_TRUE(l == assume[0] || l == assume[1]);
  EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

TEST(Solver, IncrementalQueriesAccumulateLearning) {
  // Re-solving under alternating assumptions must stay correct.
  Solver s;
  s.ensure_vars(6);
  // (v0..v5) with chain constraints vi → vi+1.
  for (Var v = 0; v + 1 < 6; ++v) s.add_clause({mk_lit(v, true), mk_lit(v + 1)});
  for (int round = 0; round < 20; ++round) {
    const Lit a0[] = {mk_lit(0)};
    ASSERT_EQ(s.solve(a0), Solver::Result::Sat);
    for (Var v = 0; v < 6; ++v) EXPECT_TRUE(s.model_value(v));
    const Lit a1[] = {mk_lit(5, true)};
    ASSERT_EQ(s.solve(a1), Solver::Result::Sat);
    EXPECT_FALSE(s.model_value(0));
    const Lit both[] = {mk_lit(0), mk_lit(5, true)};
    ASSERT_EQ(s.solve(both), Solver::Result::Unsat);
  }
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  // A hard PHP instance with a tiny budget must give up, not crash.
  const int pigeons = 8;
  const int holes = 7;
  Solver s;
  s.ensure_vars(pigeons * holes);
  auto var_at = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(var_at(p, h)));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        s.add_clause({mk_lit(var_at(p1, h), true), mk_lit(var_at(p2, h), true)});
  EXPECT_EQ(s.solve({}, 10), Solver::Result::Unknown);
}

// --------------------------------------------------------------- fuzz ------

/// Differential fuzzing against brute force on random 3-SAT near the phase
/// transition — the strongest correctness evidence for a CDCL implementation.
class SolverFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SolverFuzz, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int iter = 0; iter < 60; ++iter) {
    Cnf cnf;
    cnf.var_count = 5 + rng.below(8);  // 5..12 vars
    const std::size_t n_clauses =
        static_cast<std::size_t>(4.2 * static_cast<double>(cnf.var_count));
    for (std::size_t c = 0; c < n_clauses; ++c) {
      Clause clause;
      for (int k = 0; k < 3; ++k)
        clause.push_back(mk_lit(static_cast<Var>(rng.below(cnf.var_count)),
                                rng.bernoulli(0.5)));
      cnf.clauses.push_back(std::move(clause));
    }

    Solver s = make_solver(cnf);
    const auto result = s.solve();
    const bool expected = brute_force_sat(cnf);
    ASSERT_NE(result, Solver::Result::Unknown);
    ASSERT_EQ(result == Solver::Result::Sat, expected)
        << "seed " << GetParam() << " iter " << iter << "\n"
        << write_dimacs_string(cnf);
    if (result == Solver::Result::Sat)
      ASSERT_TRUE(model_satisfies(s, cnf)) << "model check failed, iter " << iter;
  }
}

TEST_P(SolverFuzz, AssumptionsMatchAugmentedFormula) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  for (int iter = 0; iter < 30; ++iter) {
    Cnf cnf;
    cnf.var_count = 6 + rng.below(6);
    const std::size_t n_clauses = 3 * cnf.var_count;
    for (std::size_t c = 0; c < n_clauses; ++c) {
      Clause clause;
      for (int k = 0; k < 3; ++k)
        clause.push_back(mk_lit(static_cast<Var>(rng.below(cnf.var_count)),
                                rng.bernoulli(0.5)));
      cnf.clauses.push_back(std::move(clause));
    }
    std::vector<Lit> assumptions;
    for (Var v = 0; v < 3; ++v)
      if (rng.bernoulli(0.7)) assumptions.push_back(mk_lit(v, rng.bernoulli(0.5)));

    Solver s = make_solver(cnf);
    const auto result = s.solve(assumptions);

    Cnf augmented = cnf;
    for (const Lit a : assumptions) augmented.clauses.push_back({a});
    ASSERT_EQ(result == Solver::Result::Sat, brute_force_sat(augmented))
        << "iter " << iter;
  }
}

TEST_P(SolverFuzz, RepeatedIncrementalSolvesStayConsistent) {
  // One solver, many assumption queries; each answer must match brute force
  // on the augmented formula (validates learnt-clause soundness).
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 99);
  Cnf cnf;
  cnf.var_count = 10;
  for (std::size_t c = 0; c < 38; ++c) {
    Clause clause;
    for (int k = 0; k < 3; ++k)
      clause.push_back(mk_lit(static_cast<Var>(rng.below(cnf.var_count)),
                              rng.bernoulli(0.5)));
    cnf.clauses.push_back(std::move(clause));
  }
  Solver s = make_solver(cnf);
  for (int query = 0; query < 40; ++query) {
    std::vector<Lit> assumptions;
    const std::size_t n_assume = rng.below(4);
    for (std::size_t k = 0; k < n_assume; ++k)
      assumptions.push_back(
          mk_lit(static_cast<Var>(rng.below(cnf.var_count)), rng.bernoulli(0.5)));
    const auto result = s.solve(assumptions);
    Cnf augmented = cnf;
    for (const Lit a : assumptions) augmented.clauses.push_back({a});
    ASSERT_EQ(result == Solver::Result::Sat, brute_force_sat(augmented))
        << "query " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverFuzz, ::testing::Range(0, 5));

TEST(Solver, RandomPhasesStillCorrect) {
  util::Rng rng(77);
  Solver s;
  s.ensure_vars(8);
  s.add_clause({mk_lit(0), mk_lit(1)});
  s.add_clause({mk_lit(2, true), mk_lit(3)});
  for (int i = 0; i < 10; ++i) {
    s.randomize_phases(rng);
    ASSERT_EQ(s.solve(), Solver::Result::Sat);
    ASSERT_TRUE(s.model_value(0) || s.model_value(1));
    ASSERT_TRUE(!s.model_value(2) || s.model_value(3));
  }
}

TEST(Solver, StatsProgress) {
  Solver s;
  s.ensure_vars(2);
  s.add_clause({mk_lit(0), mk_lit(1)});
  s.solve();
  EXPECT_GE(s.stats().solves, 1u);
}

// ------------------------------------------------------ per-solve stats ----

Cnf php_cnf(int pigeons, int holes) {
  Cnf cnf;
  cnf.var_count = static_cast<std::size_t>(pigeons * holes);
  auto var_at = [&](int p, int h) { return static_cast<Var>(p * holes + h); };
  for (int p = 0; p < pigeons; ++p) {
    Clause clause;
    for (int h = 0; h < holes; ++h) clause.push_back(mk_lit(var_at(p, h)));
    cnf.clauses.push_back(clause);
  }
  for (int h = 0; h < holes; ++h)
    for (int p1 = 0; p1 < pigeons; ++p1)
      for (int p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.clauses.push_back({mk_lit(var_at(p1, h), true), mk_lit(var_at(p2, h), true)});
  return cnf;
}

TEST(SolverStats, LastSolveStatsResetBetweenSolves) {
  // A hard solve followed by a trivial one: the per-solve view must describe
  // only the trivial solve, not carry the hard solve's counters forward.
  Solver s = make_solver(php_cnf(6, 5));
  ASSERT_EQ(s.solve(), Solver::Result::Unsat);
  const auto hard = s.last_solve_stats();
  EXPECT_EQ(hard.solves, 1u);
  EXPECT_GT(hard.conflicts, 0u);

  Solver trivial;
  trivial.ensure_vars(1);
  trivial.add_clause({mk_lit(0)});
  ASSERT_EQ(trivial.solve(), Solver::Result::Sat);

  ASSERT_EQ(s.solve(), Solver::Result::Unsat);  // cached root conflict: cheap
  const auto& last = s.last_solve_stats();
  EXPECT_EQ(last.solves, 1u);
  EXPECT_LE(last.conflicts, hard.conflicts);
}

TEST(SolverStats, CumulativeCountersAreMonotoneAndSumOfDeltas) {
  Solver s = make_solver(php_cnf(5, 4));
  Solver::Stats prev = s.stats();
  for (int round = 0; round < 5; ++round) {
    std::vector<Lit> assumptions;
    if (round % 2 == 1) assumptions.push_back(mk_lit(static_cast<Var>(round), true));
    s.solve(assumptions);
    const Solver::Stats& now = s.stats();
    const Solver::Stats& last = s.last_solve_stats();
    // Monotone.
    EXPECT_GE(now.conflicts, prev.conflicts);
    EXPECT_GE(now.decisions, prev.decisions);
    EXPECT_GE(now.propagations, prev.propagations);
    EXPECT_GE(now.restarts, prev.restarts);
    EXPECT_GE(now.learnt_clauses, prev.learnt_clauses);
    EXPECT_EQ(now.solves, prev.solves + 1);
    // The per-solve view is exactly the cumulative delta.
    EXPECT_EQ(now.conflicts, prev.conflicts + last.conflicts);
    EXPECT_EQ(now.decisions, prev.decisions + last.decisions);
    EXPECT_EQ(now.propagations, prev.propagations + last.propagations);
    EXPECT_EQ(now.restarts, prev.restarts + last.restarts);
    EXPECT_EQ(last.solves, 1u);
    prev = now;
  }
}

TEST(SolverStats, RestartsCountOnlyLubySequenceReentries) {
  // A trivial solve never restarts.
  Solver easy;
  easy.ensure_vars(2);
  easy.add_clause({mk_lit(0), mk_lit(1)});
  ASSERT_EQ(easy.solve(), Solver::Result::Sat);
  EXPECT_EQ(easy.last_solve_stats().restarts, 0u);

  // A budget give-up below the first restart interval is not a restart.
  Solver bounded = make_solver(php_cnf(8, 7));
  ASSERT_EQ(bounded.solve({}, 10), Solver::Result::Unknown);
  EXPECT_EQ(bounded.last_solve_stats().restarts, 0u);

  // A search that burns through many conflicts must actually restart.
  Solver hard = make_solver(php_cnf(7, 6));
  ASSERT_EQ(hard.solve(), Solver::Result::Unsat);
  EXPECT_GT(hard.last_solve_stats().conflicts, 100u);
  EXPECT_GT(hard.last_solve_stats().restarts, 0u);
}

// ------------------------------------------------------- inprocessing ------

Solver::InprocessConfig only(bool probing, bool scc, bool subsumption,
                             bool elimination) {
  Solver::InprocessConfig config;
  config.probing = probing;
  config.scc = scc;
  config.subsumption = subsumption;
  config.elimination = elimination;
  return config;
}

TEST(Inprocess, FailedLiteralProbingFixesVariables) {
  // x → a and x → ¬a: probing x conflicts, so ¬x is forced at root.
  Solver s;
  s.ensure_vars(3);
  s.add_clause({mk_lit(0, true), mk_lit(1)});
  s.add_clause({mk_lit(0, true), mk_lit(1, true), mk_lit(2)});
  s.add_clause({mk_lit(0, true), mk_lit(2, true)});
  ASSERT_TRUE(s.inprocess(only(true, false, false, false)));
  EXPECT_GE(s.stats().failed_literals, 1u);
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_FALSE(s.model_value(0));
}

TEST(Inprocess, SccCollapsesEquivalenceChain) {
  // a ≡ b ≡ c plus a clause keeping them relevant; a frozen.
  Solver s;
  s.ensure_vars(4);
  s.add_clause({mk_lit(0, true), mk_lit(1)});  // a → b
  s.add_clause({mk_lit(1, true), mk_lit(2)});  // b → c
  s.add_clause({mk_lit(2, true), mk_lit(0)});  // c → a
  s.add_clause({mk_lit(2), mk_lit(3)});
  s.set_frozen(0);
  ASSERT_TRUE(s.inprocess(only(false, true, false, false)));
  EXPECT_EQ(s.stats().equivalent_literals, 2u);
  EXPECT_FALSE(s.is_substituted(0));  // frozen representative survives
  EXPECT_TRUE(s.is_substituted(1));
  EXPECT_TRUE(s.is_substituted(2));

  const Lit assume[] = {mk_lit(0)};
  ASSERT_EQ(s.solve(assume), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(1));  // reconstructed through the equivalence
  EXPECT_TRUE(s.model_value(2));
  const Lit neg[] = {mk_lit(0, true)};
  ASSERT_EQ(s.solve(neg), Solver::Result::Sat);
  EXPECT_FALSE(s.model_value(1));
  EXPECT_FALSE(s.model_value(2));
}

TEST(Inprocess, ContradictorySccIsUnsat) {
  // a ≡ ¬a through two implications.
  Solver s;
  s.ensure_vars(2);
  s.add_clause({mk_lit(0), mk_lit(1)});
  s.add_clause({mk_lit(0), mk_lit(1, true)});
  s.add_clause({mk_lit(0, true), mk_lit(1)});
  s.add_clause({mk_lit(0, true), mk_lit(1, true)});
  // Probing or SCC must both prove this; use SCC alone.
  EXPECT_FALSE(s.inprocess(only(false, true, false, false)));
  EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(Inprocess, SubsumptionRemovesAndStrengthens) {
  Solver s;
  s.ensure_vars(4);
  s.add_clause({mk_lit(0), mk_lit(1)});                         // (a b)
  s.add_clause({mk_lit(0), mk_lit(1), mk_lit(2)});              // subsumed
  s.add_clause({mk_lit(0, true), mk_lit(1), mk_lit(3)});        // → (b d)
  ASSERT_TRUE(s.inprocess(only(false, false, true, false)));
  EXPECT_GE(s.stats().subsumed_clauses, 1u);
  EXPECT_GE(s.stats().strengthened_clauses, 1u);
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(0) || s.model_value(1));
}

TEST(Inprocess, EliminationReconstructsTheModel) {
  // v is definitionally linked to frozen a, b; eliminating it must still
  // produce models that satisfy the ORIGINAL clauses.
  Cnf cnf;
  cnf.var_count = 3;
  cnf.clauses.push_back({mk_lit(0), mk_lit(2)});        // a ∨ v
  cnf.clauses.push_back({mk_lit(1), mk_lit(2, true)});  // b ∨ ¬v
  Solver s = make_solver(cnf);
  s.set_frozen(0);
  s.set_frozen(1);
  ASSERT_TRUE(s.inprocess(only(false, false, false, true)));
  EXPECT_EQ(s.stats().eliminated_variables, 1u);
  EXPECT_TRUE(s.is_eliminated(2));

  for (const bool a : {false, true})
    for (const bool b : {false, true}) {
      const Lit assume[] = {mk_lit(0, !a), mk_lit(1, !b)};
      const auto result = s.solve(assume);
      // (a ∨ v) ∧ (b ∨ ¬v) is satisfiable exactly when a ∨ b.
      ASSERT_EQ(result == Solver::Result::Sat, a || b) << a << b;
      if (result == Solver::Result::Sat)
        ASSERT_TRUE(model_satisfies(s, cnf)) << a << b;
    }
}

TEST(Inprocess, AssumptionOnRemovedVariableThrows) {
  Solver s;
  s.ensure_vars(3);
  s.add_clause({mk_lit(0, true), mk_lit(1)});
  s.add_clause({mk_lit(1, true), mk_lit(0)});
  s.add_clause({mk_lit(0), mk_lit(2)});
  // Nothing frozen: var 1 collapses into var 0.
  ASSERT_TRUE(s.inprocess(only(false, true, false, false)));
  ASSERT_TRUE(s.is_substituted(1));
  const Lit assume[] = {mk_lit(1)};
  EXPECT_THROW(s.solve(assume), Error);
  // Frozen variables keep working.
  const Lit ok[] = {mk_lit(0)};
  EXPECT_EQ(s.solve(ok), Solver::Result::Sat);
}

TEST(Inprocess, RepeatedRunsStaySound) {
  Solver s = make_solver(php_cnf(5, 4));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(s.inprocess());
  EXPECT_EQ(s.stats().inprocess_runs, 3u);
  ASSERT_EQ(s.solve(), Solver::Result::Unsat);

  Solver sat_side = make_solver(php_cnf(4, 4));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(sat_side.inprocess());
  ASSERT_EQ(sat_side.solve(), Solver::Result::Sat);
}

// ------------------------------------------------------------- dimacs ------

TEST(Dimacs, ParsesSimple) {
  const Cnf cnf = read_dimacs_string("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(cnf.var_count, 3u);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], mk_lit(0));
  EXPECT_EQ(cnf.clauses[0][1], mk_lit(1, true));
}

TEST(Dimacs, RoundTrip) {
  util::Rng rng(3);
  Cnf cnf;
  cnf.var_count = 7;
  for (int c = 0; c < 12; ++c) {
    Clause clause;
    for (int k = 0; k < 3; ++k)
      clause.push_back(mk_lit(static_cast<Var>(rng.below(7)), rng.bernoulli(0.5)));
    cnf.clauses.push_back(clause);
  }
  const Cnf back = read_dimacs_string(write_dimacs_string(cnf));
  EXPECT_EQ(back.var_count, cnf.var_count);
  ASSERT_EQ(back.clauses.size(), cnf.clauses.size());
  for (std::size_t i = 0; i < cnf.clauses.size(); ++i)
    EXPECT_EQ(back.clauses[i], cnf.clauses[i]);
}

TEST(Dimacs, RejectsMalformed) {
  EXPECT_THROW(read_dimacs_string("1 2 0\n"), Error);
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n5 0\n"), Error);
}

}  // namespace
}  // namespace deterrent::sat

#include <gtest/gtest.h>

#include <set>

#include "bench_gen/multiplier.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sat/encoder.hpp"
#include "sat/oracle.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace deterrent::sat {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

Netlist small_random(std::uint64_t seed, std::size_t gates = 150) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 12;
  p.n_outputs = 6;
  p.n_gates = gates;
  p.seed = seed;
  return bench_gen::generate_random_circuit(p);
}

// ------------------------------------------------------------ encoder ------

TEST(Encoder, RejectsSequential) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  b.mark_output(b.add_dff(a));
  const Netlist nl = b.build();
  Solver s;
  EXPECT_THROW(encode_netlist(nl, s), Error);
}

TEST(Encoder, NetVariablesAreDense) {
  const Netlist nl = small_random(1);
  const Cnf cnf = encode_netlist_cnf(nl);
  EXPECT_GE(cnf.var_count, nl.net_count());
  EXPECT_FALSE(cnf.clauses.empty());
}

TEST(Encoder, ConstantsAreForced) {
  NetlistBuilder b;
  const NetId c0 = b.add_const(false, "zero");
  const NetId c1 = b.add_const(true, "one");
  const NetId y = b.add_gate(GateType::Or, {c0, c1}, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  Solver s;
  encode_netlist(nl, s);
  ASSERT_EQ(s.solve(), Solver::Result::Sat);
  EXPECT_FALSE(s.model_value(c0));
  EXPECT_TRUE(s.model_value(c1));
  EXPECT_TRUE(s.model_value(y));
}

/// Core differential property: fix the primary inputs to a concrete pattern
/// via assumptions; the unique model must equal logic simulation on every
/// net. Run over random circuits × random patterns for every gate type.
class EncoderEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncoderEquivalence, ModelMatchesSimulation) {
  const Netlist nl = small_random(GetParam());
  Solver s;
  encode_netlist(nl, s);
  sim::Simulator simulator(nl);
  util::Rng rng(GetParam() * 1000 + 1);

  for (int trial = 0; trial < 20; ++trial) {
    sim::Pattern pattern(nl.inputs().size());
    for (std::size_t i = 0; i < pattern.size(); ++i) pattern.set(i, rng.bernoulli(0.5));
    std::vector<Lit> assumptions;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i)
      assumptions.push_back(mk_lit(nl.inputs()[i], !pattern.test(i)));

    ASSERT_EQ(s.solve(assumptions), Solver::Result::Sat);
    const auto expected = simulator.simulate_pattern(pattern);
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(s.model_value(id), expected[id]) << "net " << id << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, EncoderEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(Encoder, ForcingImpossibleValueUnsat) {
  // y = AND(a, NOT(a)) is constant 0; forcing y=1 must be UNSAT.
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId na = b.add_gate(GateType::Not, {a});
  const NetId y = b.add_gate(GateType::And, {a, na}, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  Solver s;
  encode_netlist(nl, s);
  const Lit force_y[] = {mk_lit(y)};
  EXPECT_EQ(s.solve(force_y), Solver::Result::Unsat);
  const Lit force_ny[] = {mk_lit(y, true)};
  EXPECT_EQ(s.solve(force_ny), Solver::Result::Sat);
}

TEST(Encoder, WideXorParityCorrect) {
  // 5-input XOR: force output and all-but-one input; remaining input is
  // determined by parity.
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(GateType::Xor, ins, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  Solver s;
  encode_netlist(nl, s);

  std::vector<Lit> assumptions{mk_lit(y, false)};  // y = 1
  for (int i = 0; i < 4; ++i) assumptions.push_back(mk_lit(ins[i], true));  // all 0
  ASSERT_EQ(s.solve(assumptions), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(ins[4]));  // parity demands the last input = 1
}

TEST(Encoder, WideXnorCorrect) {
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(GateType::Xnor, ins, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  Solver s;
  encode_netlist(nl, s);
  // XNOR(0,0,0) = NOT(0) = 1.
  std::vector<Lit> assumptions;
  for (const NetId in : ins) assumptions.push_back(mk_lit(in, true));
  ASSERT_EQ(s.solve(assumptions), Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(y));
}

// ------------------------------------------------------------- oracle ------

TEST(Oracle, FindsPatternForInternalTarget) {
  const Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
      "n1 = AND(a, b)\ny = AND(n1, c)\n");
  NetlistOracle oracle(nl);
  const Constraint want{*nl.find("y"), true};
  const auto pattern = oracle.find_pattern({&want, 1});
  ASSERT_TRUE(pattern.has_value());
  // Verify by simulation.
  sim::Simulator simulator(nl);
  EXPECT_TRUE(simulator.simulate_pattern(*pattern)[*nl.find("y")]);
}

TEST(Oracle, ReportsUnsatisfiable) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId na = b.add_gate(GateType::Not, {a});
  const NetId y = b.add_gate(GateType::And, {a, na});
  b.mark_output(y);
  const Netlist nl = b.build();
  NetlistOracle oracle(nl);
  const Constraint impossible{y, true};
  EXPECT_FALSE(oracle.satisfiable({&impossible, 1}));
  EXPECT_FALSE(oracle.find_pattern({&impossible, 1}).has_value());
  const Constraint possible{y, false};
  EXPECT_TRUE(oracle.satisfiable({&possible, 1}));
}

TEST(Oracle, MultiConstraintConjunction) {
  const Netlist nl = small_random(77);
  NetlistOracle oracle(nl);
  sim::Simulator simulator(nl);
  util::Rng rng(7);

  // Pick target values observed under a real pattern — guaranteed SAT; the
  // returned pattern must reproduce all of them simultaneously.
  sim::Pattern witness(nl.inputs().size());
  for (std::size_t i = 0; i < witness.size(); ++i) witness.set(i, rng.bernoulli(0.5));
  const auto values = simulator.simulate_pattern(witness);
  std::vector<Constraint> constraints;
  for (int k = 0; k < 6; ++k) {
    const NetId net = static_cast<NetId>(rng.below(nl.net_count()));
    constraints.push_back({net, values[net]});
  }
  const auto pattern = oracle.find_pattern(constraints);
  ASSERT_TRUE(pattern.has_value());
  const auto check = simulator.simulate_pattern(*pattern);
  for (const auto& c : constraints) EXPECT_EQ(check[c.net], c.value);
}

TEST(Oracle, RandomizedCompletionDiversifiesPatterns) {
  const Netlist nl = small_random(88, 60);
  NetlistOracle oracle(nl);
  util::Rng rng(9);
  // A single weak constraint leaves many don't-cares.
  const Constraint c{nl.outputs()[0], false};
  std::set<std::string> distinct;
  for (int i = 0; i < 12; ++i) {
    oracle.randomize_completion(rng);
    const auto pattern = oracle.find_pattern({&c, 1});
    if (pattern.has_value()) distinct.insert(pattern->to_string());
  }
  EXPECT_GT(distinct.size(), 2u);
}

TEST(Oracle, QueryCountAdvances) {
  const Netlist nl = small_random(99, 40);
  NetlistOracle oracle(nl);
  const Constraint c{nl.outputs()[0], true};
  const auto before = oracle.query_count();
  oracle.satisfiable({&c, 1});
  EXPECT_GT(oracle.query_count(), before);
}

TEST(Oracle, AgreesWithSimulationWitness) {
  // Property: any (net,value) pair observed in random simulation must be
  // satisfiable according to the oracle.
  const Netlist nl = small_random(111);
  NetlistOracle oracle(nl);
  sim::Simulator simulator(nl);
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    sim::Pattern p(nl.inputs().size());
    for (std::size_t i = 0; i < p.size(); ++i) p.set(i, rng.bernoulli(0.5));
    const auto values = simulator.simulate_pattern(p);
    for (int k = 0; k < 5; ++k) {
      const NetId net = static_cast<NetId>(rng.below(nl.net_count()));
      const Constraint c{net, values[net]};
      EXPECT_TRUE(oracle.satisfiable({&c, 1}));
    }
  }
}

TEST(Oracle, MultiplierFactorization) {
  // Integration: on the 8×8 array multiplier, ask the oracle for inputs that
  // produce product == 143 (11 × 13) — i.e. SAT-based factoring.
  const Netlist nl = bench_gen::generate_array_multiplier(8);
  NetlistOracle oracle(nl);
  std::vector<Constraint> constraints;
  const unsigned target = 143;
  for (unsigned bit = 0; bit < 16; ++bit)
    constraints.push_back({nl.outputs()[bit], ((target >> bit) & 1u) != 0});
  const auto pattern = oracle.find_pattern(constraints);
  ASSERT_TRUE(pattern.has_value());
  unsigned a = 0;
  unsigned b = 0;
  for (unsigned i = 0; i < 8; ++i) {
    a |= static_cast<unsigned>(pattern->test(i)) << i;
    b |= static_cast<unsigned>(pattern->test(8 + i)) << i;
  }
  EXPECT_EQ(a * b, target);
}

}  // namespace
}  // namespace deterrent::sat

#include <gtest/gtest.h>

#include <cmath>

#include "rl/adam.hpp"
#include "rl/categorical.hpp"
#include "rl/gae.hpp"
#include "rl/mlp.hpp"
#include "rl/ppo.hpp"
#include "util/rng.hpp"

namespace deterrent::rl {
namespace {

// ----------------------------------------------------------------- Mlp -----

TEST(Mlp, ShapesAndDeterminism) {
  util::Rng rng1(1);
  util::Rng rng2(1);
  Mlp a({4, 8, 3}, rng1);
  Mlp b({4, 8, 3}, rng2);
  EXPECT_EQ(a.input_size(), 4u);
  EXPECT_EQ(a.output_size(), 3u);
  EXPECT_EQ(a.param_count(), 4u * 8 + 8 + 8u * 3 + 3);
  const std::vector<float> x{0.1f, -0.2f, 0.3f, 0.4f};
  Mlp::Workspace wa, wb;
  EXPECT_EQ(a.forward(x, wa), b.forward(x, wb));
}

TEST(Mlp, CopyParamsMakesNetworksEqual) {
  util::Rng rng1(1);
  util::Rng rng2(2);
  Mlp a({5, 6, 2}, rng1);
  Mlp b({5, 6, 2}, rng2);
  const std::vector<float> x{1, 2, 3, 4, 5};
  Mlp::Workspace wa, wb;
  EXPECT_NE(a.forward(x, wa), b.forward(x, wb));
  b.copy_params_from(a);
  EXPECT_EQ(a.forward(x, wa), b.forward(x, wb));
}

/// Gradient check: analytic backward vs central finite differences, over
/// several random shapes and inputs. Loss = Σ cᵢ·yᵢ with random c.
class MlpGradCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MlpGradCheck, BackwardMatchesFiniteDifferences) {
  util::Rng rng(GetParam());
  const std::size_t in = 2 + rng.below(4);
  const std::size_t hidden = 3 + rng.below(5);
  const std::size_t out = 1 + rng.below(3);
  Mlp net({in, hidden, hidden, out}, rng);

  std::vector<float> x(in);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> c(out);
  for (auto& v : c) v = static_cast<float>(rng.normal());

  Mlp::Workspace ws;
  net.zero_grad();
  net.forward(x, ws);
  net.backward(x, ws, c);

  auto params = net.params();
  // Probe a sample of parameters in every tensor.
  for (auto& p : params) {
    for (std::size_t probe = 0; probe < std::min<std::size_t>(p.size, 6); ++probe) {
      const std::size_t idx = probe * (p.size / std::min<std::size_t>(p.size, 6));
      const float orig = p.values[idx];
      const float eps = 1e-3f;
      Mlp::Workspace w2;

      p.values[idx] = orig + eps;
      const auto y_plus = net.forward(x, w2);
      p.values[idx] = orig - eps;
      const auto y_minus = net.forward(x, w2);
      p.values[idx] = orig;

      double numeric = 0.0;
      for (std::size_t o = 0; o < out; ++o)
        numeric += static_cast<double>(c[o]) * (y_plus[o] - y_minus[o]) / (2.0 * eps);
      EXPECT_NEAR(p.grads[idx], numeric, 2e-2 * std::max(1.0, std::abs(numeric)))
          << "param idx " << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MlpGradCheck, ::testing::Range<std::uint64_t>(1, 9));

TEST(Mlp, BackwardAccumulates) {
  util::Rng rng(3);
  Mlp net({2, 3, 1}, rng);
  const std::vector<float> x{0.5f, -0.5f};
  const std::vector<float> g{1.0f};
  Mlp::Workspace ws;
  net.zero_grad();
  net.forward(x, ws);
  net.backward(x, ws, g);
  const float after_one = net.params()[0].grads[0];
  net.forward(x, ws);
  net.backward(x, ws, g);
  EXPECT_NEAR(net.params()[0].grads[0], 2 * after_one, 1e-5);
  net.zero_grad();
  EXPECT_EQ(net.params()[0].grads[0], 0.0f);
}

// ---------------------------------------------------------------- Adam -----

TEST(Adam, DescendsQuadratic) {
  // Minimize f(w) = Σ (w_i - t_i)² with gradients fed manually.
  std::vector<float> w(4, 0.0f);
  std::vector<float> g(4, 0.0f);
  const std::vector<float> target{1.0f, -2.0f, 0.5f, 3.0f};
  Adam opt({{w.data(), g.data(), w.size()}}, {.lr = 0.05f});
  for (int step = 0; step < 500; ++step) {
    for (std::size_t i = 0; i < w.size(); ++i) g[i] = 2.0f * (w[i] - target[i]);
    opt.step();
  }
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_NEAR(w[i], target[i], 0.05);
  EXPECT_EQ(opt.step_count(), 500u);
}

TEST(Adam, GradClippingScalesLargeGradients) {
  std::vector<float> w{0.0f};
  std::vector<float> g{1e6f};
  Adam opt({{w.data(), g.data(), 1}}, {.lr = 0.1f});
  opt.step(1.0f);  // clipped to unit norm: behaves like g = 1
  // Adam normalizes by sqrt(v̂), so the step magnitude ≈ lr either way; the
  // point is it must be finite and small.
  EXPECT_TRUE(std::isfinite(w[0]));
  EXPECT_LT(std::abs(w[0]), 0.2f);
}

TEST(Adam, GradNormComputed) {
  std::vector<float> w{0, 0};
  std::vector<float> g{3.0f, 4.0f};
  Adam opt({{w.data(), g.data(), 2}});
  EXPECT_NEAR(opt.grad_norm(), 5.0, 1e-6);
}

// ---------------------------------------------------- MaskedCategorical ----

TEST(Categorical, UniformWhenLogitsEqual) {
  util::BitVec mask(4);
  mask.set_all();
  const std::vector<float> logits{1.0f, 1.0f, 1.0f, 1.0f};
  const MaskedCategorical dist(logits, mask);
  for (const float p : dist.probs()) EXPECT_NEAR(p, 0.25f, 1e-6);
  EXPECT_NEAR(dist.entropy(), std::log(4.0f), 1e-5);
}

TEST(Categorical, MaskedActionsGetZeroProbability) {
  util::BitVec mask(4);
  mask.set(1);
  mask.set(3);
  const std::vector<float> logits{100.0f, 0.0f, 100.0f, 0.0f};
  const MaskedCategorical dist(logits, mask);
  EXPECT_EQ(dist.probs()[0], 0.0f);
  EXPECT_EQ(dist.probs()[2], 0.0f);
  EXPECT_NEAR(dist.probs()[1] + dist.probs()[3], 1.0f, 1e-6);
}

TEST(Categorical, SampleNeverPicksMasked) {
  util::Rng rng(5);
  util::BitVec mask(8);
  mask.set(2);
  mask.set(5);
  std::vector<float> logits(8, 0.0f);
  const MaskedCategorical dist(logits, mask);
  for (int i = 0; i < 2000; ++i) {
    const auto a = dist.sample(rng);
    ASSERT_TRUE(a == 2 || a == 5);
  }
}

TEST(Categorical, SampleFrequenciesMatchProbs) {
  util::Rng rng(7);
  util::BitVec mask(3);
  mask.set_all();
  const std::vector<float> logits{std::log(0.2f), std::log(0.3f), std::log(0.5f)};
  const MaskedCategorical dist(logits, mask);
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) counts[dist.sample(rng)]++;
  EXPECT_NEAR(counts[0] / double(n), 0.2, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.5, 0.02);
}

TEST(Categorical, LogProbConsistent) {
  util::BitVec mask(3);
  mask.set_all();
  const std::vector<float> logits{0.1f, 0.7f, -0.3f};
  const MaskedCategorical dist(logits, mask);
  for (std::uint32_t a = 0; a < 3; ++a)
    EXPECT_NEAR(std::exp(dist.log_prob(a)), dist.probs()[a], 1e-6);
}

TEST(Categorical, ArgmaxRespectsMask) {
  util::BitVec mask(3);
  mask.set(0);
  mask.set(2);
  const std::vector<float> logits{0.0f, 10.0f, 1.0f};
  const MaskedCategorical dist(logits, mask);
  EXPECT_EQ(dist.argmax(), 2u);  // action 1 is masked despite max logit
}

TEST(Categorical, EntropyZeroForSingleAction) {
  util::BitVec mask(5);
  mask.set(3);
  std::vector<float> logits(5, 0.0f);
  const MaskedCategorical dist(logits, mask);
  EXPECT_NEAR(dist.entropy(), 0.0f, 1e-6);
  util::Rng rng(1);
  EXPECT_EQ(dist.sample(rng), 3u);
}

TEST(Categorical, GradMatchesFiniteDifference) {
  // d/d logits of [g·logP(a) + h·H] via add_grad vs numeric.
  util::Rng rng(11);
  util::BitVec mask(5);
  mask.set_all();
  mask.set(1, false);
  std::vector<float> logits{0.3f, -0.8f, 0.5f, 0.0f, -0.2f};
  const float g = 0.7f;
  const float h = -0.4f;
  const std::uint32_t action = 2;

  const MaskedCategorical dist(logits, mask);
  std::vector<float> grad(5, 0.0f);
  dist.add_grad(action, g, h, grad);

  for (std::size_t j = 0; j < 5; ++j) {
    const float eps = 1e-4f;
    auto value_at = [&](float delta) {
      auto l2 = logits;
      l2[j] += delta;
      const MaskedCategorical d2(l2, mask);
      return g * d2.log_prob(action) + h * d2.entropy();
    };
    const double numeric = (value_at(eps) - value_at(-eps)) / (2.0 * eps);
    EXPECT_NEAR(grad[j], numeric, 1e-3) << "logit " << j;
  }
  EXPECT_EQ(grad[1], 0.0f);  // masked entry untouched
}

// ----------------------------------------------------------------- GAE -----

TEST(Gae, SingleStepEqualsDelta) {
  const std::vector<float> rewards{2.0f};
  const std::vector<float> values{0.5f};
  const auto result = compute_gae(rewards, values, 0.9f, 0.95f);
  EXPECT_NEAR(result.advantages[0], 2.0f - 0.5f, 1e-6);
  EXPECT_NEAR(result.returns[0], 2.0f, 1e-6);
}

TEST(Gae, LambdaZeroIsOneStepTD) {
  const std::vector<float> rewards{1.0f, 1.0f, 1.0f};
  const std::vector<float> values{0.2f, 0.4f, 0.6f};
  const float gamma = 0.9f;
  const auto result = compute_gae(rewards, values, gamma, 0.0f);
  EXPECT_NEAR(result.advantages[0], 1.0f + gamma * 0.4f - 0.2f, 1e-6);
  EXPECT_NEAR(result.advantages[1], 1.0f + gamma * 0.6f - 0.4f, 1e-6);
  EXPECT_NEAR(result.advantages[2], 1.0f - 0.6f, 1e-6);
}

TEST(Gae, LambdaOneIsMonteCarlo) {
  const std::vector<float> rewards{1.0f, 2.0f, 3.0f};
  const std::vector<float> values{0.0f, 0.0f, 0.0f};
  const float gamma = 0.5f;
  const auto result = compute_gae(rewards, values, gamma, 1.0f);
  // Discounted returns: 1 + .5·2 + .25·3 = 2.75; 2 + .5·3 = 3.5; 3.
  EXPECT_NEAR(result.advantages[0], 2.75f, 1e-5);
  EXPECT_NEAR(result.advantages[1], 3.5f, 1e-5);
  EXPECT_NEAR(result.advantages[2], 3.0f, 1e-5);
}

TEST(Gae, ReturnsAreAdvantagePlusValue) {
  util::Rng rng(13);
  std::vector<float> rewards(10);
  std::vector<float> values(10);
  for (auto& r : rewards) r = static_cast<float>(rng.normal());
  for (auto& v : values) v = static_cast<float>(rng.normal());
  const auto result = compute_gae(rewards, values, 0.99f, 0.95f);
  for (std::size_t t = 0; t < 10; ++t)
    EXPECT_NEAR(result.returns[t], result.advantages[t] + values[t], 1e-5);
}

TEST(Gae, NormalizeAdvantages) {
  std::vector<float> adv{1.0f, 2.0f, 3.0f, 4.0f};
  normalize_advantages(adv);
  float mean = 0;
  for (const float a : adv) mean += a;
  EXPECT_NEAR(mean, 0.0f, 1e-5);
  float var = 0;
  for (const float a : adv) var += a * a;
  EXPECT_NEAR(var / 4.0f, 1.0f, 1e-4);
}

TEST(Gae, NormalizeSingletonIsNoop) {
  std::vector<float> adv{5.0f};
  normalize_advantages(adv);
  EXPECT_EQ(adv[0], 5.0f);
}

TEST(Gae, EmptyEpisodeYieldsEmptyResult) {
  // Regression: an env can reset straight into an exhausted action mask,
  // producing a zero-length episode. compute_gae must return empty vectors
  // instead of touching rewards[n - 1] with n == 0.
  const GaeResult gae = compute_gae({}, {}, 0.99f, 0.95f);
  EXPECT_TRUE(gae.advantages.empty());
  EXPECT_TRUE(gae.returns.empty());
}

// ------------------------------------------------------------ PPO toys -----

/// One-step bandit: 4 arms, arm 2 pays 1. The policy must concentrate there.
class BanditEnv final : public Env {
 public:
  std::size_t observation_size() const override { return 1; }
  std::size_t action_count() const override { return 4; }
  std::vector<float> reset(util::Rng&) override { return {1.0f}; }
  StepResult step(std::uint32_t action) override {
    return {{1.0f}, action == 2 ? 1.0f : 0.0f, true};
  }
  const util::BitVec& action_mask() const override { return mask_; }

 private:
  util::BitVec mask_ = [] {
    util::BitVec m(4);
    m.set_all();
    return m;
  }();
};

TEST(Ppo, LearnsBandit) {
  PpoConfig cfg;
  cfg.episodes_per_update = 32;
  cfg.hidden_size = 16;
  cfg.entropy_coef = 0.01f;
  cfg.learning_rate = 1e-2f;
  PpoTrainer trainer([](std::size_t) { return std::make_unique<BanditEnv>(); }, cfg, 3);
  double reward = 0.0;
  for (int u = 0; u < 40; ++u) reward = trainer.update().mean_episode_reward;
  EXPECT_GT(reward, 0.85) << "policy failed to find the paying arm";
}

/// Corridor of length N: action 1 moves right (+reward at goal), action 0
/// moves left. Tests multi-step credit assignment.
class CorridorEnv final : public Env {
 public:
  explicit CorridorEnv(int length) : length_(length) {
    mask_ = util::BitVec(2);
    mask_.set_all();
  }
  std::size_t observation_size() const override {
    return static_cast<std::size_t>(length_) + 1;
  }
  std::size_t action_count() const override { return 2; }
  std::vector<float> reset(util::Rng&) override {
    pos_ = 0;
    steps_ = 0;
    return obs();
  }
  StepResult step(std::uint32_t action) override {
    pos_ += action == 1 ? 1 : -1;
    if (pos_ < 0) pos_ = 0;
    ++steps_;
    const bool win = pos_ == length_;
    const bool done = win || steps_ >= 4 * length_;
    return {obs(), win ? 1.0f : 0.0f, done};
  }
  const util::BitVec& action_mask() const override { return mask_; }

 private:
  std::vector<float> obs() const {
    std::vector<float> o(observation_size(), 0.0f);
    o[static_cast<std::size_t>(pos_)] = 1.0f;
    return o;
  }
  int length_;
  int pos_ = 0;
  int steps_ = 0;
  util::BitVec mask_;
};

TEST(Ppo, LearnsCorridor) {
  PpoConfig cfg;
  cfg.episodes_per_update = 24;
  cfg.hidden_size = 24;
  cfg.entropy_coef = 0.01f;
  cfg.learning_rate = 5e-3f;
  cfg.gamma = 0.95f;
  PpoTrainer trainer([](std::size_t) { return std::make_unique<CorridorEnv>(5); }, cfg,
                     11);
  double reward = 0.0;
  for (int u = 0; u < 60; ++u) reward = trainer.update().mean_episode_reward;
  EXPECT_GT(reward, 0.9) << "policy failed to walk the corridor";
}

/// Masked bandit: the paying arm is masked; the policy must settle on the
/// best *allowed* arm — the masking mechanism end to end.
class MaskedBanditEnv final : public Env {
 public:
  MaskedBanditEnv() {
    mask_ = util::BitVec(4);
    mask_.set_all();
    mask_.set(2, false);  // best arm forbidden
  }
  std::size_t observation_size() const override { return 1; }
  std::size_t action_count() const override { return 4; }
  std::vector<float> reset(util::Rng&) override { return {1.0f}; }
  StepResult step(std::uint32_t action) override {
    EXPECT_NE(action, 2u) << "masked action selected";
    const float reward = action == 2 ? 1.0f : (action == 3 ? 0.6f : 0.1f);
    return {{1.0f}, reward, true};
  }
  const util::BitVec& action_mask() const override { return mask_; }

 private:
  util::BitVec mask_;
};

TEST(Ppo, MaskedActionsNeverTakenAndBestAllowedFound) {
  PpoConfig cfg;
  cfg.episodes_per_update = 32;
  cfg.hidden_size = 16;
  cfg.entropy_coef = 0.01f;
  cfg.learning_rate = 1e-2f;
  PpoTrainer trainer([](std::size_t) { return std::make_unique<MaskedBanditEnv>(); },
                     cfg, 5);
  double reward = 0.0;
  for (int u = 0; u < 40; ++u) reward = trainer.update().mean_episode_reward;
  EXPECT_GT(reward, 0.5) << "policy failed to find best allowed arm";
}

TEST(Ppo, VectorizedWorkersMatchProgress) {
  // 4 workers must also learn the bandit (exercises the thread path).
  PpoConfig cfg;
  cfg.episodes_per_update = 32;
  cfg.hidden_size = 16;
  cfg.entropy_coef = 0.01f;
  cfg.learning_rate = 1e-2f;
  cfg.n_workers = 4;
  PpoTrainer trainer([](std::size_t) { return std::make_unique<BanditEnv>(); }, cfg, 7);
  double reward = 0.0;
  for (int u = 0; u < 40; ++u) reward = trainer.update().mean_episode_reward;
  EXPECT_GT(reward, 0.85);
  EXPECT_EQ(trainer.total_episodes(), 40u * 32u);
}

TEST(Ppo, EntropyBonusSlowsCollapse) {
  // With a huge entropy coefficient the bandit policy must stay spread out —
  // the §3.4 exploration-boost mechanism.
  PpoConfig low;
  low.episodes_per_update = 32;
  low.hidden_size = 16;
  low.entropy_coef = 0.0f;
  low.learning_rate = 1e-2f;
  PpoConfig high = low;
  high.entropy_coef = 1.0f;

  PpoTrainer t_low([](std::size_t) { return std::make_unique<BanditEnv>(); }, low, 9);
  PpoTrainer t_high([](std::size_t) { return std::make_unique<BanditEnv>(); }, high, 9);
  double ent_low = 0;
  double ent_high = 0;
  for (int u = 0; u < 30; ++u) {
    ent_low = t_low.update().mean_entropy;
    ent_high = t_high.update().mean_entropy;
  }
  EXPECT_GT(ent_high, ent_low + 0.2)
      << "entropy bonus failed to keep the policy exploratory";
}

TEST(Ppo, UpdateStatsConsistent) {
  PpoConfig cfg;
  cfg.episodes_per_update = 8;
  cfg.hidden_size = 8;
  PpoTrainer trainer([](std::size_t) { return std::make_unique<BanditEnv>(); }, cfg, 1);
  const auto stats = trainer.update();
  EXPECT_EQ(stats.episodes, 8u);
  EXPECT_EQ(stats.steps, 8u);  // bandit episodes are single-step
  EXPECT_EQ(stats.mean_episode_length, 1.0);
  EXPECT_NEAR(stats.total_loss,
              stats.policy_loss + cfg.entropy_coef * stats.entropy_loss +
                  cfg.value_coef * stats.value_loss,
              1e-9);
}

TEST(Ppo, RunEpisodeGreedyWorks) {
  PpoConfig cfg;
  cfg.episodes_per_update = 32;
  cfg.hidden_size = 16;
  cfg.learning_rate = 1e-2f;
  cfg.entropy_coef = 0.01f;
  PpoTrainer trainer([](std::size_t) { return std::make_unique<BanditEnv>(); }, cfg, 3);
  for (int u = 0; u < 40; ++u) trainer.update();
  BanditEnv env;
  util::Rng rng(1);
  EXPECT_EQ(trainer.run_episode(env, rng, /*greedy=*/true), 1.0);
}

}  // namespace
}  // namespace deterrent::rl

// Differential tests for the event-driven multi-trace sequential engine:
// sim::SequentialEngine must agree bit-exactly — every net, every cycle,
// every trace lane, every supported SIMD kernel backend — with the seed
// repository's sequential stepping semantics (one full combinational
// evaluation per cycle, then Q <= D), reproduced here as an independent
// reference. Includes the randomized circuit × stimulus × reset-state fuzz
// loop, a Gray-code stimulus walk that exercises the sparse resimulate path
// one flipped input at a time, and the MIPS16 trojan soak.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_gen/mips16.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/scan.hpp"
#include "sim/kernels/dispatch.hpp"
#include "sim/sequential.hpp"
#include "sim/sequential_engine.hpp"
#include "sim/simulator.hpp"
#include "trojan/trojan.hpp"
#include "util/rng.hpp"

namespace deterrent::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

/// The seed repository's SequentialSimulator, reproduced verbatim as the
/// differential reference: one *full* combinational evaluation per cycle
/// (never the incremental path), single trace, std::vector<bool> values.
/// SequentialSimulator itself is now a facade over SequentialEngine, so the
/// reference must live outside the production code to stay independent.
class SeedSequentialSimulator {
 public:
  explicit SeedSequentialSimulator(const Netlist& netlist)
      : netlist_(&netlist),
        scan_(netlist::make_full_scan(netlist)),
        comb_sim_(scan_.comb),
        state_(scan_.pseudo_inputs.size(), false) {}

  void reset(bool value = false) {
    std::fill(state_.begin(), state_.end(), value);
  }

  void set_state(NetId q, bool value) {
    for (std::size_t i = 0; i < scan_.pseudo_inputs.size(); ++i)
      if (scan_.pseudo_inputs[i] == q) {
        state_[i] = value;
        return;
      }
    FAIL() << "set_state: net is not a DFF output";
  }

  bool state(NetId q) const {
    for (std::size_t i = 0; i < scan_.pseudo_inputs.size(); ++i)
      if (scan_.pseudo_inputs[i] == q) return state_[i];
    ADD_FAILURE() << "state: net is not a DFF output";
    return false;
  }

  const std::vector<bool>& step(const Pattern& inputs) {
    const auto scan_inputs = scan_.comb.inputs();
    Pattern combined(scan_inputs.size());
    std::size_t pi_index = 0;
    std::size_t ff_index = 0;
    for (std::size_t i = 0; i < scan_inputs.size(); ++i) {
      const NetId net = scan_inputs[i];
      if (ff_index < scan_.pseudo_inputs.size() &&
          scan_.pseudo_inputs[ff_index] == net) {
        combined.set(i, state_[ff_index]);
        ++ff_index;
      } else {
        combined.set(i, inputs.test(pi_index));
        ++pi_index;
      }
    }
    values_ = comb_sim_.simulate_pattern(combined);
    for (std::size_t i = 0; i < scan_.pseudo_inputs.size(); ++i)
      state_[i] = values_[scan_.pseudo_outputs[i]];
    return values_;
  }

 private:
  const Netlist* netlist_;
  netlist::ScanView scan_;
  Simulator comb_sim_;
  std::vector<bool> state_;
  std::vector<bool> values_;
};

Netlist random_sequential_circuit(std::uint64_t seed, std::size_t gates = 160,
                                  std::size_t inputs = 8, std::size_t dffs = 10) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = inputs;
  p.n_outputs = 5;
  p.n_gates = gates;
  p.n_dffs = dffs;
  p.seed = seed;
  p.wide_gate_fraction = 0.2;
  return bench_gen::generate_random_circuit(p);
}

/// Builds the input-major word stimulus for one cycle from per-trace
/// patterns: word w of input i carries bit lane t = stimulus[w*64+t].
std::vector<std::uint64_t> pack_cycle(const std::vector<Pattern>& trace_patterns,
                                      std::size_t n_inputs, std::size_t words) {
  std::vector<std::uint64_t> packed(n_inputs * words, 0);
  for (std::size_t t = 0; t < trace_patterns.size(); ++t)
    for (std::size_t i = 0; i < n_inputs; ++i)
      if (trace_patterns[t].test(i)) packed[i * words + (t >> 6)] |= 1ULL << (t & 63);
  return packed;
}

// --------------------------------------------- randomized differential -----

/// Random sequential circuit × random multi-cycle stimulus × random reset
/// states, checked against the seed reference for every supported kernel
/// backend and every trace lane (trace count deliberately not a multiple of
/// 64, so the last state word is ragged).
class SequentialEngineDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequentialEngineDifferential, AllBackendsAllLanesMatchSeedSimulator) {
  const std::uint64_t seed = GetParam();
  const Netlist nl = random_sequential_circuit(seed);
  const std::size_t n_inputs = nl.inputs().size();
  constexpr std::size_t kTraces = 130;  // 3 words, ragged last lane group
  constexpr std::size_t kCycles = 12;

  // Draw per-trace reset states and stimulus once.
  util::Rng rng(seed * 613 + 7);
  std::vector<std::vector<bool>> reset_state(kTraces);  // [trace][dff]
  for (auto& s : reset_state) {
    s.resize(nl.dffs().size());
    for (std::size_t k = 0; k < s.size(); ++k) s[k] = rng.bernoulli(0.5);
  }
  std::vector<std::vector<Pattern>> stimulus(kCycles);  // [cycle][trace]
  for (auto& cycle : stimulus) {
    cycle.reserve(kTraces);
    for (std::size_t t = 0; t < kTraces; ++t) {
      Pattern p(n_inputs);
      for (std::size_t i = 0; i < n_inputs; ++i) p.set(i, rng.bernoulli(0.5));
      cycle.push_back(std::move(p));
    }
  }

  // Seed-reference trajectories, one independent run per trace.
  std::vector<std::vector<std::vector<bool>>> want(kTraces);  // [trace][cycle][net]
  SeedSequentialSimulator ref(nl);
  for (std::size_t t = 0; t < kTraces; ++t) {
    ref.reset(false);
    for (std::size_t k = 0; k < nl.dffs().size(); ++k)
      ref.set_state(nl.dffs()[k], reset_state[t][k]);
    for (std::size_t c = 0; c < kCycles; ++c) want[t].push_back(ref.step(stimulus[c][t]));
  }

  for (const auto isa : kernels::supported_isas()) {
    SequentialEngine seq(nl, kTraces, isa);
    ASSERT_EQ(seq.engine().isa(), isa);
    ASSERT_EQ(seq.words(), 3u);
    for (std::size_t t = 0; t < kTraces; ++t)
      for (std::size_t k = 0; k < nl.dffs().size(); ++k)
        seq.set_state(nl.dffs()[k], t, reset_state[t][k]);
    for (std::size_t c = 0; c < kCycles; ++c) {
      seq.step(pack_cycle(stimulus[c], n_inputs, seq.words()));
      for (std::size_t t = 0; t < kTraces; ++t)
        for (NetId id = 0; id < nl.net_count(); ++id)
          ASSERT_EQ(seq.value(id, t), want[t][c][id])
              << kernels::to_string(isa) << " seed " << seed << " cycle " << c
              << " trace " << t << " net " << id;
    }
    EXPECT_EQ(seq.cycle_count(), kCycles);
    // Post-run state (the value every Q takes next cycle) must agree too.
    SeedSequentialSimulator state_ref(nl);
    for (std::size_t t = 0; t < kTraces; ++t) {
      state_ref.reset(false);
      for (std::size_t k = 0; k < nl.dffs().size(); ++k)
        state_ref.set_state(nl.dffs()[k], reset_state[t][k]);
      for (std::size_t c = 0; c < kCycles; ++c) state_ref.step(stimulus[c][t]);
      for (const NetId q : nl.dffs())
        ASSERT_EQ(seq.state(q, t), state_ref.state(q))
            << kernels::to_string(isa) << " trace " << t << " dff " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequentialEngineDifferential,
                         ::testing::Values(1, 2, 3, 4));

/// Gray-code stimulus walk: exactly one primary input flips per cycle, so
/// every cycle's dirty set is {one PI} ∪ {changed Qs} — the sparse
/// resimulate path the sequential engine was built around.
TEST(SequentialEngine, GrayCodeStimulusWalkMatchesSeedSimulator) {
  const Netlist nl = random_sequential_circuit(9, 200, 8, 12);
  const std::size_t n_inputs = nl.inputs().size();
  ASSERT_EQ(n_inputs, 8u);

  SeedSequentialSimulator ref(nl);
  ref.reset(false);
  SequentialEngine seq(nl, 1);

  std::size_t code = 0;
  for (std::size_t step = 0; step < (std::size_t{1} << n_inputs); ++step) {
    code = step ^ (step >> 1);
    Pattern p(n_inputs);
    for (std::size_t i = 0; i < n_inputs; ++i) p.set(i, (code >> i) & 1);
    const auto& want = ref.step(p);
    seq.step_broadcast(p);
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(seq.value(id, 0), want[id]) << "step " << step << " net " << id;
  }
  // The walk must actually have used the incremental path: total gate
  // evaluations well under cycles × program size.
  EXPECT_LT(seq.gate_evals(),
            seq.cycle_count() * static_cast<std::uint64_t>(nl.gate_count()));
}

// ------------------------------------------------------------- semantics ----

TEST(SequentialEngine, BroadcastKeepsTracesInLockstep) {
  const Netlist nl = random_sequential_circuit(5);
  SequentialEngine seq(nl, 70);  // ragged: 70 traces in 2 words
  util::Rng rng(17);
  for (int cycle = 0; cycle < 6; ++cycle) {
    Pattern p(nl.inputs().size());
    for (std::size_t i = 0; i < p.size(); ++i) p.set(i, rng.bernoulli(0.5));
    seq.step_broadcast(p);
    for (NetId id = 0; id < nl.net_count(); ++id)
      for (std::size_t t = 1; t < seq.trace_count(); ++t)
        ASSERT_EQ(seq.value(id, t), seq.value(id, 0)) << "net " << id << " trace " << t;
  }
}

TEST(SequentialEngine, ResetRestartsAndSetStateMidRunPropagates) {
  const Netlist nl = random_sequential_circuit(6);
  SeedSequentialSimulator ref(nl);
  SequentialEngine seq(nl, 1);
  util::Rng rng(23);
  auto random_pattern = [&] {
    Pattern p(nl.inputs().size());
    for (std::size_t i = 0; i < p.size(); ++i) p.set(i, rng.bernoulli(0.5));
    return p;
  };

  ref.reset(true);
  seq.reset(true);
  for (int cycle = 0; cycle < 5; ++cycle) {
    const Pattern p = random_pattern();
    const auto& want = ref.step(p);
    seq.step_broadcast(p);
    for (NetId id = 0; id < nl.net_count(); ++id) ASSERT_EQ(seq.value(id, 0), want[id]);
  }
  // Mid-run state override must dirty exactly that Q and track the reference.
  const NetId q = nl.dffs()[2];
  ref.set_state(q, !ref.state(q));
  seq.set_state(q, 0, !seq.state(q, 0));
  for (int cycle = 0; cycle < 5; ++cycle) {
    const Pattern p = random_pattern();
    const auto& want = ref.step(p);
    seq.step_broadcast(p);
    for (NetId id = 0; id < nl.net_count(); ++id) ASSERT_EQ(seq.value(id, 0), want[id]);
  }
  // reset() restarts the cycle counter and the next step is a fresh full
  // evaluation (state all-zero again).
  ref.reset(false);
  seq.reset(false);
  EXPECT_EQ(seq.cycle_count(), 0u);
  const Pattern p = random_pattern();
  const auto& want = ref.step(p);
  seq.step_broadcast(p);
  EXPECT_EQ(seq.cycle_count(), 1u);
  for (NetId id = 0; id < nl.net_count(); ++id) ASSERT_EQ(seq.value(id, 0), want[id]);
}

TEST(SequentialEngine, StateWordsBulkInitializationMatchesPerBitSets) {
  const Netlist nl = random_sequential_circuit(7);
  SequentialEngine a(nl, 128);
  SequentialEngine b(nl, 128);
  util::Rng rng(31);
  for (const NetId q : nl.dffs()) {
    std::vector<std::uint64_t> words(a.words());
    for (auto& w : words) w = rng.next_word();
    a.set_state_words(q, words);
    for (std::size_t t = 0; t < b.trace_count(); ++t)
      b.set_state(q, t, (words[t >> 6] >> (t & 63)) & 1ULL);
    for (std::size_t t = 0; t < a.trace_count(); ++t)
      ASSERT_EQ(a.state(q, t), b.state(q, t));
  }
  Pattern p(nl.inputs().size());
  a.step_broadcast(p);
  b.step_broadcast(p);
  for (NetId id = 0; id < nl.net_count(); ++id)
    for (std::size_t t = 0; t < a.trace_count(); ++t)
      ASSERT_EQ(a.value(id, t), b.value(id, t));
}

TEST(SequentialEngine, CombinationalNetlistIsABatchedEvaluator) {
  // No DFFs: every "cycle" is just an evaluation of the stimulus; the
  // incremental path still applies between cycles.
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 6;
  p.n_outputs = 4;
  p.n_gates = 80;
  p.seed = 3;
  const Netlist nl = bench_gen::generate_random_circuit(p);
  ASSERT_FALSE(nl.is_sequential());
  SequentialEngine seq(nl, 1);
  Simulator comb(nl);
  util::Rng rng(5);
  for (int cycle = 0; cycle < 10; ++cycle) {
    Pattern pat(nl.inputs().size());
    for (std::size_t i = 0; i < pat.size(); ++i) pat.set(i, rng.bernoulli(0.5));
    seq.step_broadcast(pat);
    const auto want = comb.simulate_pattern(pat);
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(seq.value(id, 0), want[id]) << "cycle " << cycle;
  }
}

// ------------------------------------------------------------ facade --------

TEST(SequentialSimulatorFacade, MatchesSeedSimulatorAndInvalidatesOnReset) {
  const Netlist nl = random_sequential_circuit(11);
  SeedSequentialSimulator ref(nl);
  ref.reset(false);
  SequentialSimulator facade(nl);
  EXPECT_TRUE(facade.values().empty());  // no cycle yet

  util::Rng rng(41);
  for (int cycle = 0; cycle < 20; ++cycle) {
    Pattern p(nl.inputs().size());
    for (std::size_t i = 0; i < p.size(); ++i) p.set(i, rng.bernoulli(0.5));
    const auto& want = ref.step(p);
    const util::BitVec& got = facade.step(p);
    ASSERT_EQ(got.size(), nl.net_count());
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(got.test(id), want[id]) << "cycle " << cycle << " net " << id;
  }
  for (const NetId q : nl.dffs()) EXPECT_EQ(facade.state(q), ref.state(q));
  EXPECT_EQ(facade.cycle_count(), 20u);

  // reset() empties values() — the documented invalidation — so a stale
  // reference fails loudly on the BitVec bounds assert instead of silently
  // returning dead data.
  facade.reset();
  EXPECT_TRUE(facade.values().empty());
  EXPECT_EQ(facade.cycle_count(), 0u);
}

// -------------------------------------------------------- MIPS16 soak -------

std::uint16_t encode(unsigned op, unsigned rs, unsigned rt, unsigned rd) {
  return static_cast<std::uint16_t>((op << 12) | (rs << 8) | (rt << 4) | rd);
}

/// Multi-hundred-cycle program on the MIPS16 core with a trojan inserted:
/// the sequential engine must report the trigger firing on exactly the same
/// cycle as the seed simulator, and the side-channel trace (per-cycle toggle
/// counts over all nets) must be bit-identical.
TEST(SequentialEngineSoak, Mips16TrojanTriggerAndSideChannelTraceMatchSeed) {
  const Netlist cpu = bench_gen::generate_mips16({});

  // Trigger: low byte of the PC equals 5 — guaranteed to fire while the
  // straight-line prologue executes, and rare afterwards.
  trojan::Trojan ht;
  for (unsigned bit = 0; bit < 8; ++bit) {
    const auto q = cpu.find("pc" + std::to_string(bit));
    ASSERT_TRUE(q.has_value());
    ht.trigger.push_back({*q, ((5u >> bit) & 1u) != 0, 0.0});
  }
  // Payload on a register bit: consumers of r3_0 see it XORed with the
  // trigger once infected.
  const auto payload = cpu.find("r3_0");
  ASSERT_TRUE(payload.has_value());
  ht.payload_net = *payload;
  // payload_is_safe's fanout BFS crosses register boundaries, so it is
  // over-conservative on sequential designs (the register file feeds the PC
  // *through* flip-flops). apply_trojan's builder validates combinational
  // acyclicity and is the authoritative check here — it throws if the
  // payload genuinely fed the trigger combinationally.
  NetId trigger_net = netlist::kNoNet;
  const Netlist infected = trojan::apply_trojan(cpu, ht, &trigger_net);
  ASSERT_NE(trigger_net, netlist::kNoNet);
  ASSERT_TRUE(infected.is_sequential());

  // Program: a straight-line arithmetic prologue (so the PC marches through
  // 5), then a random instruction soup — branches, loads, multiplies,
  // whatever the rng draws. ~320 cycles.
  constexpr std::size_t kCycles = 320;
  util::Rng rng(2026);
  std::vector<std::uint16_t> program;
  for (unsigned k = 0; k < 10; ++k)
    program.push_back(encode(13, 0, static_cast<unsigned>(k & 3), k + 1));  // ADDI
  while (program.size() < kCycles)
    program.push_back(static_cast<std::uint16_t>(rng.next_word() & 0xffff));

  SeedSequentialSimulator ref(infected);
  ref.reset(false);
  SequentialEngine seq(infected, 1);

  std::size_t ref_first_fire = kCycles;
  std::size_t seq_first_fire = kCycles;
  std::vector<std::size_t> ref_trace, seq_trace;  // per-cycle toggle counts
  std::vector<bool> prev_ref(infected.net_count(), false);
  std::vector<bool> prev_seq(infected.net_count(), false);
  for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
    Pattern inputs(32);  // instr[16] + mem_rdata[16]
    for (unsigned bit = 0; bit < 16; ++bit)
      inputs.set(bit, (program[cycle] >> bit) & 1u);
    const auto& want = ref.step(inputs);
    seq.step_broadcast(inputs);

    std::size_t ref_toggles = 0, seq_toggles = 0;
    for (NetId id = 0; id < infected.net_count(); ++id) {
      const bool rv = want[id];
      const bool sv = seq.value(id, 0);
      ASSERT_EQ(sv, rv) << "cycle " << cycle << " net " << id;
      ref_toggles += rv != prev_ref[id];
      seq_toggles += sv != prev_seq[id];
      prev_ref[id] = rv;
      prev_seq[id] = sv;
    }
    ref_trace.push_back(ref_toggles);
    seq_trace.push_back(seq_toggles);
    if (want[trigger_net] && ref_first_fire == kCycles) ref_first_fire = cycle;
    if (seq.value(trigger_net, 0) && seq_first_fire == kCycles) seq_first_fire = cycle;
  }

  EXPECT_LT(ref_first_fire, kCycles) << "trigger never fired in the soak program";
  EXPECT_EQ(seq_first_fire, ref_first_fire);
  EXPECT_EQ(seq_trace, ref_trace);
  // A program workload is exactly the steady-state case the engine targets:
  // the mean per-cycle activity must be well below the program size.
  EXPECT_LT(seq.gate_evals(), kCycles * static_cast<std::uint64_t>(
                                  seq.engine().target().gate_count()));
}

}  // namespace
}  // namespace deterrent::sim

#include <gtest/gtest.h>

#include <set>

#include "bench_gen/library.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sim/simulator.hpp"
#include "trojan/coverage.hpp"
#include "trojan/trojan.hpp"
#include "util/rng.hpp"

namespace deterrent::trojan {
namespace {

using analysis::RareNet;
using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

struct Fixture {
  Netlist netlist;
  std::vector<RareNet> rare;
};

Fixture make_fixture(std::uint64_t seed, double threshold = 0.15) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 16;
  p.n_outputs = 8;
  p.n_gates = 250;
  p.seed = seed;
  Fixture f{bench_gen::generate_random_circuit(p), {}};
  util::Rng rng(seed + 1);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = threshold;
  rcfg.sim_patterns = 1 << 13;
  f.rare = analysis::find_rare_nets(f.netlist, rcfg, rng);
  return f;
}

// ----------------------------------------------------------- sampling ------

TEST(Sampling, ProducesRequestedCountOfValidTriggers) {
  const Fixture f = make_fixture(5);
  if (f.rare.size() < 8) GTEST_SKIP() << "too few rare nets";
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(9);
  TrojanSampleConfig cfg;
  cfg.width = 4;
  cfg.count = 20;
  const auto trojans = sample_trojans(f.netlist, f.rare, cfg, oracle, rng);
  EXPECT_EQ(trojans.size(), 20u);
  for (const auto& t : trojans) {
    EXPECT_EQ(t.width(), 4u);
    // Verified valid: the trigger conjunction must be satisfiable.
    std::vector<sat::Constraint> cs;
    for (const auto& rn : t.trigger) cs.push_back({rn.net, rn.rare_value});
    EXPECT_TRUE(oracle.satisfiable(cs));
  }
}

TEST(Sampling, TriggersAreDistinct) {
  const Fixture f = make_fixture(6);
  if (f.rare.size() < 8) GTEST_SKIP();
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(10);
  TrojanSampleConfig cfg;
  cfg.width = 3;
  cfg.count = 15;
  const auto trojans = sample_trojans(f.netlist, f.rare, cfg, oracle, rng);
  std::set<std::vector<NetId>> seen;
  for (const auto& t : trojans) {
    std::vector<NetId> key;
    for (const auto& rn : t.trigger) key.push_back(rn.net);
    std::sort(key.begin(), key.end());
    EXPECT_TRUE(seen.insert(key).second) << "duplicate trigger";
  }
}

TEST(Sampling, WidthLargerThanRareNetsYieldsNothing) {
  const Fixture f = make_fixture(7);
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(11);
  TrojanSampleConfig cfg;
  cfg.width = static_cast<unsigned>(f.rare.size() + 5);
  cfg.count = 3;
  EXPECT_TRUE(sample_trojans(f.netlist, f.rare, cfg, oracle, rng).empty());
}

TEST(Sampling, PayloadIsSafe) {
  const Fixture f = make_fixture(8);
  if (f.rare.size() < 6) GTEST_SKIP();
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(12);
  TrojanSampleConfig cfg;
  cfg.width = 3;
  cfg.count = 10;
  for (const auto& t : sample_trojans(f.netlist, f.rare, cfg, oracle, rng))
    EXPECT_TRUE(payload_is_safe(f.netlist, t.payload_net, t.trigger));
}

TEST(PayloadSafety, DetectsFanoutIntoTrigger) {
  // chain: a → n1 → n2; trigger on n2, payload candidate n1 (feeds n2: unsafe).
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId n1 = b.add_gate(GateType::Not, {a}, "n1");
  const NetId n2 = b.add_gate(GateType::Not, {n1}, "n2");
  const NetId po = b.add_gate(GateType::Buf, {a}, "po");
  b.mark_output(n2);
  b.mark_output(po);
  const Netlist nl = b.build();
  const std::vector<RareNet> trigger{{n2, true, 0.1}};
  EXPECT_FALSE(payload_is_safe(nl, n1, trigger));
  EXPECT_FALSE(payload_is_safe(nl, n2, trigger));  // trigger net itself
  EXPECT_TRUE(payload_is_safe(nl, po, trigger));
}

// ------------------------------------------------------ apply_trojan -------

TEST(ApplyTrojan, PayloadFlipsOutputExactlyWhenTriggered) {
  // y = AND(a,b,c) rare at 1; payload on po = BUF(d).
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId bb = b.add_input("b");
  const NetId c = b.add_input("c");
  const NetId d = b.add_input("d");
  const NetId y = b.add_gate(GateType::And, {a, bb, c}, "y");
  const NetId po = b.add_gate(GateType::Buf, {d}, "po");
  b.mark_output(y);
  b.mark_output(po);
  const Netlist golden = b.build();

  Trojan trojan;
  trojan.trigger = {{y, true, 0.125}};
  trojan.payload_net = po;
  NetId trigger_net = netlist::kNoNet;
  const Netlist infected = apply_trojan(golden, trojan, &trigger_net);
  ASSERT_NE(trigger_net, netlist::kNoNet);

  sim::Simulator gsim(golden);
  sim::Simulator isim(infected);
  for (unsigned bits = 0; bits < 16; ++bits) {
    sim::Pattern p(4);
    for (unsigned i = 0; i < 4; ++i) p.set(i, (bits >> i) & 1u);
    const auto gv = gsim.simulate_pattern(p);
    const auto iv = isim.simulate_pattern(p);
    const bool triggered = gv[y];
    // Infected PO list: second output replaced by the XOR net.
    const NetId infected_po = infected.outputs()[1];
    EXPECT_EQ(iv[infected_po], triggered ? !gv[po] : gv[po]) << "bits=" << bits;
    // Non-payload output must be untouched.
    EXPECT_EQ(iv[infected.outputs()[0]], gv[y]);
    EXPECT_EQ(iv[trigger_net], triggered);
  }
}

TEST(ApplyTrojan, RareValueZeroGetsInverted) {
  // Trigger on n @0: the AND tree must see NOT(n).
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId n = b.add_gate(GateType::Or, {a, a}, "n");  // == a
  const NetId po = b.add_gate(GateType::Buf, {a}, "po");
  b.mark_output(po);
  const Netlist golden = b.build();
  Trojan trojan;
  trojan.trigger = {{n, false, 0.1}};
  trojan.payload_net = po;
  NetId trigger_net = netlist::kNoNet;
  const Netlist infected = apply_trojan(golden, trojan, &trigger_net);
  sim::Simulator isim(infected);
  sim::Pattern p(1);
  p.set(0, false);  // n = 0 → triggered
  EXPECT_TRUE(isim.simulate_pattern(p)[trigger_net]);
  p.set(0, true);
  EXPECT_FALSE(isim.simulate_pattern(p)[trigger_net]);
}

TEST(ApplyTrojan, InfectedNetlistStillAcyclic) {
  const Fixture f = make_fixture(9);
  if (f.rare.size() < 6) GTEST_SKIP();
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(13);
  TrojanSampleConfig cfg;
  cfg.width = 4;
  cfg.count = 10;
  for (const auto& t : sample_trojans(f.netlist, f.rare, cfg, oracle, rng)) {
    // build() throws on combinational cycles, so construction is the test.
    const Netlist infected = apply_trojan(f.netlist, t);
    EXPECT_EQ(infected.outputs().size(), f.netlist.outputs().size());
    EXPECT_GT(infected.net_count(), f.netlist.net_count());
  }
}

// ----------------------------------------------------------- coverage ------

TEST(Coverage, EmptyInputs) {
  const Fixture f = make_fixture(10);
  const sim::PatternSet empty(f.netlist.inputs().size());
  const auto r1 = evaluate_coverage(f.netlist, {}, empty);
  EXPECT_EQ(r1.total, 0u);
  EXPECT_EQ(r1.coverage_percent(), 0.0);
}

TEST(Coverage, BruteForceAgreement) {
  const Fixture f = make_fixture(11);
  if (f.rare.size() < 6) GTEST_SKIP();
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(14);
  TrojanSampleConfig cfg;
  cfg.width = 2;
  cfg.count = 25;
  const auto trojans = sample_trojans(f.netlist, f.rare, cfg, oracle, rng);
  const auto patterns = sim::PatternSet::random(f.netlist.inputs().size(), 300, rng);
  const auto result = evaluate_coverage(f.netlist, trojans, patterns);

  // Reference: per-pattern scalar simulation.
  sim::Simulator sim(f.netlist);
  for (std::size_t t = 0; t < trojans.size(); ++t) {
    std::size_t first = CoverageResult::kNever;
    for (std::size_t p = 0; p < patterns.pattern_count() && first == CoverageResult::kNever;
         ++p) {
      const auto values = sim.simulate_pattern(patterns.pattern(p));
      bool fired = true;
      for (const auto& rn : trojans[t].trigger)
        fired = fired && values[rn.net] == rn.rare_value;
      if (fired) first = p;
    }
    EXPECT_EQ(result.first_activation[t], first) << "trojan " << t;
  }
}

TEST(Coverage, SatWitnessPatternAlwaysCovers) {
  // A pattern generated from the trigger's own SAT model must activate it.
  const Fixture f = make_fixture(12);
  if (f.rare.size() < 6) GTEST_SKIP();
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(15);
  TrojanSampleConfig cfg;
  cfg.width = 4;
  cfg.count = 10;
  const auto trojans = sample_trojans(f.netlist, f.rare, cfg, oracle, rng);
  sim::PatternSet witnesses(f.netlist.inputs().size());
  for (const auto& t : trojans) {
    std::vector<sat::Constraint> cs;
    for (const auto& rn : t.trigger) cs.push_back({rn.net, rn.rare_value});
    const auto p = oracle.find_pattern(cs);
    ASSERT_TRUE(p.has_value());
    witnesses.push(*p);
  }
  const auto result = evaluate_coverage(f.netlist, trojans, witnesses);
  EXPECT_EQ(result.covered, trojans.size());
  EXPECT_EQ(result.coverage_percent(), 100.0);
  // Each trojan's own witness is at its index or earlier.
  for (std::size_t t = 0; t < trojans.size(); ++t)
    EXPECT_LE(result.first_activation[t], t);
}

TEST(Coverage, MarginalCurveIsMonotone) {
  const Fixture f = make_fixture(13);
  if (f.rare.size() < 6) GTEST_SKIP();
  sat::NetlistOracle oracle(f.netlist);
  util::Rng rng(16);
  TrojanSampleConfig cfg;
  cfg.width = 2;
  cfg.count = 30;
  const auto trojans = sample_trojans(f.netlist, f.rare, cfg, oracle, rng);
  const auto patterns = sim::PatternSet::random(f.netlist.inputs().size(), 500, rng);
  const auto result = evaluate_coverage(f.netlist, trojans, patterns);
  double prev = 0.0;
  for (std::size_t n = 0; n <= patterns.pattern_count(); n += 25) {
    const double cov = result.coverage_percent_at(n);
    EXPECT_GE(cov, prev);
    prev = cov;
  }
  EXPECT_NEAR(result.coverage_percent_at(patterns.pattern_count()),
              result.coverage_percent(), 1e-9);
  EXPECT_EQ(result.coverage_percent_at(0), 0.0);
}

TEST(Coverage, WiderTriggersAreHarder) {
  // Statistical property on the multiplier: width-8 triggers get activated
  // by random patterns no more often than width-2 triggers.
  auto bench = bench_gen::load_benchmark("c6288_like");
  util::Rng rng(17);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.1;
  rcfg.sim_patterns = 1 << 13;
  const auto rare = analysis::find_rare_nets(bench.scan.comb, rcfg, rng);
  ASSERT_GE(rare.size(), 16u);
  sat::NetlistOracle oracle(bench.scan.comb);

  TrojanSampleConfig narrow;
  narrow.width = 2;
  narrow.count = 30;
  TrojanSampleConfig wide;
  wide.width = 8;
  wide.count = 30;
  const auto t_narrow = sample_trojans(bench.scan.comb, rare, narrow, oracle, rng);
  const auto t_wide = sample_trojans(bench.scan.comb, rare, wide, oracle, rng);
  const auto patterns = sim::PatternSet::random(bench.scan.comb.inputs().size(), 4000, rng);
  const double cov_narrow =
      evaluate_coverage(bench.scan.comb, t_narrow, patterns).coverage_percent();
  const double cov_wide =
      evaluate_coverage(bench.scan.comb, t_wide, patterns).coverage_percent();
  EXPECT_GE(cov_narrow, cov_wide);
}

}  // namespace
}  // namespace deterrent::trojan

// Differential training-determinism suite for the vectorized PPO rollout
// path: batched Mlp passes, the VectorEnv collector, and the batched
// CompatibleSetVectorEnv must all be bit-identical to their scalar twins.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "bench_gen/random_circuit.hpp"
#include "core/compatible_set_env.hpp"
#include "core/set_pool.hpp"
#include "rl/adam.hpp"
#include "rl/gae.hpp"
#include "rl/mlp.hpp"
#include "rl/mlp_kernels.hpp"
#include "rl/ppo.hpp"
#include "rl/vector_env.hpp"
#include "util/assert.hpp"

namespace deterrent {
namespace {

using analysis::CompatibilityMatrix;
using analysis::RareNet;
using core::CompatibleSetEnv;
using core::CompatibleSetVectorEnv;
using core::DistinctSetPool;
using core::EnvConfig;
using core::MaskMode;
using core::RewardMode;
using rl::Env;
using rl::EnvVector;
using rl::Mlp;
using rl::PpoConfig;
using rl::PpoTrainer;
using rl::StepResult;

// ------------------------------------------------------ Mlp batch passes ---

std::vector<float> random_input(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.below(2000)) / 500.0f - 2.0f;
  return v;
}

TEST(MlpBatch, ForwardBatchMatchesPerRowBitIdentically) {
  const std::vector<std::vector<std::size_t>> shapes = {
      {3, 8, 2}, {5, 16, 16, 4}, {17, 32, 9}, {1, 4, 1}};
  for (const auto& shape : shapes) {
    util::Rng init(shape[0] * 131 + shape.back());
    Mlp net(shape, init);
    // Rows straddle the internal tile width (16): partial, exact, and
    // multi-tile-plus-remainder batches.
    for (const std::size_t rows : {1u, 5u, 16u, 17u, 33u, 64u}) {
      util::Rng data(rows * 977 + 5);
      const std::vector<float> input = random_input(rows * shape.front(), data);
      Mlp::BatchWorkspace bws;
      const auto batch_out = net.forward_batch(input, rows, bws);
      ASSERT_EQ(batch_out.size(), rows * shape.back());

      Mlp::Workspace ws;
      for (std::size_t r = 0; r < rows; ++r) {
        const auto row_out = net.forward(
            std::span<const float>(input).subspan(r * shape.front(), shape.front()),
            ws);
        for (std::size_t o = 0; o < shape.back(); ++o)
          ASSERT_EQ(batch_out[r * shape.back() + o], row_out[o])
              << "rows=" << rows << " r=" << r << " o=" << o;
      }
    }
  }
}

TEST(MlpBatch, BackwardBatchMatchesPerRowAccumulationBitIdentically) {
  const std::vector<std::size_t> shape{7, 24, 24, 5};
  util::Rng init(42);
  Mlp batch_net(shape, init);
  Mlp row_net(shape, init);
  row_net.copy_params_from(batch_net);

  for (const std::size_t rows : {1u, 16u, 33u}) {
    util::Rng data(rows * 31 + 7);
    const std::vector<float> input = random_input(rows * shape.front(), data);
    std::vector<float> grads = random_input(rows * shape.back(), data);
    // Exercise the exact-zero skip (backward treats g == 0 as "no update").
    for (std::size_t i = 0; i < grads.size(); i += 3) grads[i] = 0.0f;

    batch_net.zero_grad();
    Mlp::BatchWorkspace bws;
    batch_net.forward_batch(input, rows, bws);
    batch_net.backward_batch(input, bws, grads);

    row_net.zero_grad();
    Mlp::Workspace ws;
    for (std::size_t r = 0; r < rows; ++r) {
      const auto in =
          std::span<const float>(input).subspan(r * shape.front(), shape.front());
      row_net.forward(in, ws);
      row_net.backward(
          in, ws, std::span<const float>(grads).subspan(r * shape.back(), shape.back()));
    }

    auto batch_params = batch_net.params();
    auto row_params = row_net.params();
    ASSERT_EQ(batch_params.size(), row_params.size());
    for (std::size_t p = 0; p < batch_params.size(); ++p)
      for (std::size_t i = 0; i < batch_params[p].size; ++i)
        ASSERT_EQ(batch_params[p].grads[i], row_params[p].grads[i])
            << "rows=" << rows << " tensor=" << p << " elem=" << i;
  }
}

// The row-pointer overloads feed scattered rows (the trainer passes shuffled
// minibatch rows and per-lane observations in place); they must match the
// contiguous-span overloads bit for bit.
TEST(MlpBatch, RowPointerOverloadsMatchContiguousBitIdentically) {
  const std::vector<std::size_t> shape{11, 16, 4};
  util::Rng init(9);
  Mlp span_net(shape, init);
  Mlp ptr_net(shape, init);
  ptr_net.copy_params_from(span_net);

  for (const std::size_t rows : {1u, 16u, 21u}) {
    util::Rng data(rows * 53 + 1);
    std::vector<float> input = random_input(rows * shape.front(), data);
    for (std::size_t i = 0; i < input.size(); ++i)
      if (data.below(10) < 6) input[i] = 0.0f;  // sparse layer-0 path
    const std::vector<float> grads = random_input(rows * shape.back(), data);
    // Reversed storage order: the pointers, not the layout, define the rows.
    std::vector<std::vector<float>> scattered(rows);
    std::vector<const float*> row_ptrs(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto* base = input.data() + r * shape.front();
      scattered[rows - 1 - r].assign(base, base + shape.front());
      row_ptrs[r] = scattered[rows - 1 - r].data();
    }

    Mlp::BatchWorkspace span_ws, ptr_ws;
    const auto span_out = span_net.forward_batch(input, rows, span_ws);
    const auto ptr_out = ptr_net.forward_batch(row_ptrs.data(), rows, ptr_ws);
    ASSERT_EQ(span_out.size(), ptr_out.size());
    for (std::size_t i = 0; i < span_out.size(); ++i)
      ASSERT_EQ(span_out[i], ptr_out[i]) << "rows=" << rows << " elem=" << i;

    span_net.zero_grad();
    ptr_net.zero_grad();
    span_net.backward_batch(input, span_ws, grads);
    ptr_net.backward_batch(row_ptrs.data(), ptr_ws, grads);
    auto span_params = span_net.params();
    auto ptr_params = ptr_net.params();
    for (std::size_t p = 0; p < span_params.size(); ++p)
      for (std::size_t i = 0; i < span_params[p].size; ++i)
        ASSERT_EQ(span_params[p].grads[i], ptr_params[p].grads[i])
            << "rows=" << rows << " tensor=" << p << " elem=" << i;
  }
}

// Every compiled-in SIMD backend the host can run must produce bitwise the
// same batch results as the Scalar table — the contract that lets a
// checkpoint (and the bench checksums) move freely between hosts. The
// backend is chosen at Mlp construction from DETERRENT_FORCE_ISA, so the
// sweep builds one network per backend from the same init stream. Inputs are
// ~70% exact zeros to exercise the sparse layer-0 column-skip path.
TEST(MlpBatch, AllKernelBackendsAreBitIdenticalToScalar) {
  const auto isas = rl::kernels::supported_mlp_isas();
  ASSERT_FALSE(isas.empty());
  ASSERT_EQ(isas.front(), rl::kernels::MlpIsa::Scalar);

  const std::vector<std::size_t> shape{19, 32, 32, 6};
  const std::size_t rows = 33;  // two full tiles plus a remainder
  util::Rng data(2026);
  std::vector<float> input = random_input(rows * shape.front(), data);
  for (std::size_t i = 0; i < input.size(); ++i)
    if (data.below(10) < 7) input[i] = 0.0f;
  std::vector<float> grads = random_input(rows * shape.back(), data);
  for (std::size_t i = 0; i < grads.size(); i += 3) grads[i] = 0.0f;

  const char* saved = std::getenv("DETERRENT_FORCE_ISA");
  const std::string saved_value = saved ? saved : "";

  std::vector<float> ref_out, ref_grads, ref_params;
  for (const auto isa : isas) {
    ::setenv("DETERRENT_FORCE_ISA", rl::kernels::to_string(isa), 1);
    util::Rng init(7);
    Mlp net(shape, init);

    Mlp::BatchWorkspace bws;
    const auto out = net.forward_batch(input, rows, bws);
    net.zero_grad();
    net.backward_batch(input, bws, grads);
    std::vector<float> flat_grads;
    for (const auto& p : net.params())
      flat_grads.insert(flat_grads.end(), p.grads, p.grads + p.size);

    // The Adam elementwise update dispatches to the same backend table; two
    // clipped steps cover the scale path and a bias-correction change.
    rl::Adam opt(net.params());
    opt.step(0.5f);
    opt.step(0.5f);
    const std::vector<float> stepped = net.flat_params();

    if (isa == rl::kernels::MlpIsa::Scalar) {
      ref_out.assign(out.begin(), out.end());
      ref_grads = std::move(flat_grads);
      ref_params = stepped;
      continue;
    }
    ASSERT_EQ(out.size(), ref_out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(out[i], ref_out[i])
          << rl::kernels::to_string(isa) << " forward elem " << i;
    ASSERT_EQ(flat_grads.size(), ref_grads.size());
    for (std::size_t i = 0; i < flat_grads.size(); ++i)
      ASSERT_EQ(flat_grads[i], ref_grads[i])
          << rl::kernels::to_string(isa) << " grad elem " << i;
    ASSERT_EQ(stepped.size(), ref_params.size());
    for (std::size_t i = 0; i < stepped.size(); ++i)
      ASSERT_EQ(stepped[i], ref_params[i])
          << rl::kernels::to_string(isa) << " adam-stepped param " << i;
  }

  if (saved)
    ::setenv("DETERRENT_FORCE_ISA", saved_value.c_str(), 1);
  else
    ::unsetenv("DETERRENT_FORCE_ISA");
}

// ----------------------------------------------------------- toy WalkEnv ---

/// Deterministic multi-step toy with rng-dependent resets, a mask that
/// changes with the state, and action-dependent episode lengths — enough
/// structure that any collector divergence shows up in episodes and params.
class WalkEnv final : public Env {
 public:
  explicit WalkEnv(int length = 6) : length_(length), mask_(3) {}
  std::size_t observation_size() const override {
    return static_cast<std::size_t>(length_) + 3;
  }
  std::size_t action_count() const override { return 3; }
  std::vector<float> reset(util::Rng& rng) override {
    pos_ = static_cast<int>(rng.below(3));
    steps_ = 0;
    refresh_mask();
    return obs();
  }
  StepResult step(std::uint32_t action) override {
    if (action == 0) pos_ = std::max(0, pos_ - 1);
    if (action == 1) pos_ += 1;
    if (action == 2) pos_ += 2;  // jump: only legal from even positions
    ++steps_;
    const bool done = pos_ >= length_ || steps_ >= 3 * length_;
    const float reward =
        (pos_ >= length_ ? 1.0f : 0.0f) + 0.01f * static_cast<float>(action);
    refresh_mask();
    return {obs(), reward, done};
  }
  const util::BitVec& action_mask() const override { return mask_; }

 private:
  void refresh_mask() {
    mask_.clear_all();
    mask_.set(0);
    mask_.set(1);
    if (pos_ % 2 == 0) mask_.set(2);
  }
  std::vector<float> obs() const {
    std::vector<float> o(observation_size(), 0.0f);
    o[static_cast<std::size_t>(std::min(pos_, length_ + 2))] = 1.0f;
    return o;
  }
  int length_;
  int pos_ = 0;
  int steps_ = 0;
  util::BitVec mask_;
};

PpoConfig toy_config() {
  PpoConfig cfg;
  cfg.episodes_per_update = 16;
  cfg.hidden_size = 16;
  cfg.minibatch_size = 32;
  cfg.entropy_coef = 0.02f;
  cfg.learning_rate = 3e-3f;
  return cfg;
}

void expect_stats_equal(const rl::PpoUpdateStats& a, const rl::PpoUpdateStats& b) {
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.mean_episode_reward, b.mean_episode_reward);
  EXPECT_EQ(a.mean_episode_length, b.mean_episode_length);
  EXPECT_EQ(a.policy_loss, b.policy_loss);
  EXPECT_EQ(a.value_loss, b.value_loss);
  EXPECT_EQ(a.mean_entropy, b.mean_entropy);
  EXPECT_EQ(a.total_loss, b.total_loss);
}

// -------------------------------------------- trainer-level differential ---

/// The tentpole determinism contract: episodes are keyed by global episode
/// index, so EVERY collector configuration — the scalar baseline, threaded
/// workers, and vectorized lanes at any width — trains to bit-identical
/// parameters. Lane counts cover the degenerate single lane, uneven episode
/// splits (7), and more lanes than episodes (64).
TEST(PpoVector, TrainingIsInvariantAcrossLaneAndWorkerCounts) {
  const auto factory = [](std::size_t) { return std::make_unique<WalkEnv>(); };

  PpoTrainer baseline(factory, toy_config(), 17);  // scalar single-env trainer
  std::vector<rl::PpoUpdateStats> baseline_stats;
  for (int u = 0; u < 3; ++u) baseline_stats.push_back(baseline.update());

  auto check = [&](const PpoConfig& cfg, const std::string& label) {
    PpoTrainer trainer(factory, cfg, 17);
    for (int u = 0; u < 3; ++u)
      expect_stats_equal(baseline_stats[static_cast<std::size_t>(u)],
                         trainer.update());
    EXPECT_EQ(baseline.total_steps(), trainer.total_steps()) << label;
    EXPECT_EQ(baseline.policy().flat_params(), trainer.policy().flat_params())
        << "policy params diverged: " << label;
    EXPECT_EQ(baseline.value().flat_params(), trainer.value().flat_params())
        << "value params diverged: " << label;
  };

  for (const std::size_t n : {1u, 2u, 7u, 64u}) {
    PpoConfig lanes_cfg = toy_config();
    lanes_cfg.rollout_lanes = n;
    check(lanes_cfg, "rollout_lanes=" + std::to_string(n));
  }
  for (const std::size_t n : {2u, 4u}) {
    PpoConfig workers_cfg = toy_config();
    workers_cfg.n_workers = n;
    check(workers_cfg, "n_workers=" + std::to_string(n));
  }
}

/// Records every reset / action / reward an env sees, so the suite can pin
/// "identical episodes" directly rather than inferring it from parameters.
class RecordingWalkEnv final : public Env {
 public:
  RecordingWalkEnv(std::vector<float>* log) : log_(log) {}
  std::size_t observation_size() const override { return inner_.observation_size(); }
  std::size_t action_count() const override { return inner_.action_count(); }
  std::vector<float> reset(util::Rng& rng) override {
    log_->push_back(-1.0f);  // episode boundary marker
    auto obs = inner_.reset(rng);
    for (float x : obs) log_->push_back(x);
    return obs;
  }
  StepResult step(std::uint32_t action) override {
    auto result = inner_.step(action);
    log_->push_back(static_cast<float>(action));
    log_->push_back(result.reward);
    return result;
  }
  const util::BitVec& action_mask() const override { return inner_.action_mask(); }

 private:
  WalkEnv inner_;
  std::vector<float>* log_;
};

TEST(PpoVector, CollectedEpisodesAndRewardsIdenticalToScalarRollouts) {
  constexpr std::size_t kLanes = 3;
  std::vector<std::vector<float>> worker_logs(kLanes);
  std::vector<std::vector<float>> lane_logs(kLanes);

  PpoConfig workers_cfg = toy_config();
  workers_cfg.n_workers = kLanes;
  PpoTrainer threaded(
      [&](std::size_t w) { return std::make_unique<RecordingWalkEnv>(&worker_logs[w]); },
      workers_cfg, 23);

  PpoConfig lanes_cfg = toy_config();
  lanes_cfg.rollout_lanes = kLanes;
  PpoTrainer vectorized(
      [&](std::size_t w) { return std::make_unique<RecordingWalkEnv>(&lane_logs[w]); },
      lanes_cfg, 23);

  for (int u = 0; u < 2; ++u) {
    threaded.update();
    vectorized.update();
  }
  for (std::size_t l = 0; l < kLanes; ++l) {
    EXPECT_FALSE(worker_logs[l].empty());
    EXPECT_EQ(worker_logs[l], lane_logs[l])
        << "lane " << l << " saw a different episode stream than worker " << l;
  }
}

TEST(PpoVector, WorkersAndLanesAreMutuallyExclusive) {
  PpoConfig cfg = toy_config();
  cfg.n_workers = 2;
  cfg.rollout_lanes = 2;
  EXPECT_THROW(
      PpoTrainer([](std::size_t) { return std::make_unique<WalkEnv>(); }, cfg, 1),
      Error);
}

// -------------------------------------------------- checkpoint / restore ---

TEST(PpoVector, StateRestoreResumesBatchedTrainingBitIdentically) {
  const auto factory = [](std::size_t) { return std::make_unique<WalkEnv>(); };
  PpoConfig cfg = toy_config();
  cfg.rollout_lanes = 4;

  PpoTrainer reference(factory, cfg, 29);
  reference.update();
  const rl::TrainerState snapshot = reference.state();
  const auto r2 = reference.update();
  const auto r3 = reference.update();

  PpoTrainer resumed(factory, cfg, 999);  // different seed: state must win
  resumed.restore(snapshot);
  const auto s2 = resumed.update();
  const auto s3 = resumed.update();

  expect_stats_equal(r2, s2);
  expect_stats_equal(r3, s3);
  EXPECT_EQ(reference.policy().flat_params(), resumed.policy().flat_params());
  EXPECT_EQ(reference.value().flat_params(), resumed.value().flat_params());
  EXPECT_EQ(reference.total_steps(), resumed.total_steps());
  EXPECT_EQ(reference.total_episodes(), resumed.total_episodes());
}

TEST(PpoVector, CheckpointsArePortableAcrossLaneCounts) {
  // Episode RNG streams are keyed by global episode index, so a snapshot
  // taken under one lane count must resume bit-identically under another —
  // parallelism is a throughput knob, not part of the training trajectory.
  const auto factory = [](std::size_t) { return std::make_unique<WalkEnv>(); };
  PpoConfig four = toy_config();
  four.rollout_lanes = 4;
  PpoConfig two = toy_config();
  two.rollout_lanes = 2;

  PpoTrainer a(factory, four, 31);
  a.update();
  const rl::TrainerState snapshot = a.state();
  const auto a2 = a.update();

  PpoTrainer b(factory, two, 555);
  b.restore(snapshot);
  const auto b2 = b.update();

  expect_stats_equal(a2, b2);
  EXPECT_EQ(a.policy().flat_params(), b.policy().flat_params());
  EXPECT_EQ(a.value().flat_params(), b.value().flat_params());
}

// ------------------------------------- CompatibleSetVectorEnv lock-step ----

struct Fixture {
  netlist::Netlist netlist;
  std::vector<RareNet> rare;
  CompatibilityMatrix matrix;
  std::vector<util::BitVec> signatures;
};

Fixture make_fixture(std::uint64_t seed, std::size_t gates = 220) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 16;
  p.n_outputs = 8;
  p.n_gates = gates;
  p.seed = seed;
  Fixture f{bench_gen::generate_random_circuit(p), {}, {}, {}};
  util::Rng rng(seed * 3 + 1);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.15;
  rcfg.sim_patterns = 1 << 13;
  f.rare = analysis::find_rare_nets(f.netlist, rcfg, rng);
  f.matrix = analysis::build_compatibility(f.netlist, f.rare, {}, rng);
  util::Rng sig_rng(seed * 7 + 5);
  f.signatures =
      analysis::rare_activation_signatures(f.netlist, f.rare, 1 << 13, sig_rng);
  return f;
}

std::uint32_t pick_masked_action(const util::BitVec& mask, util::Rng& rng) {
  const auto indices = mask.to_indices();
  return indices[rng.below(indices.size())];
}

/// Drives a CompatibleSetVectorEnv and N standalone CompatibleSetEnv twins in
/// lock-step with shared per-lane RNG streams and identical actions, and
/// asserts every observable matches at every step: observations, masks,
/// rewards, done flags, members, SAT query counts, and the pooled sets.
void run_lockstep_differential(const Fixture& f, const EnvConfig& cfg,
                               std::size_t n_lanes, std::size_t episodes_per_lane,
                               CompatibleSetVectorEnv::SatBackend backend,
                               bool expect_exact_sat_count) {
  DistinctSetPool vec_pool;
  DistinctSetPool scalar_pool;
  CompatibleSetVectorEnv venv(f.netlist, f.rare, f.matrix, cfg, &vec_pool, n_lanes,
                              backend);
  std::vector<std::unique_ptr<CompatibleSetEnv>> twins;
  std::vector<util::Rng> reset_rng_v;
  std::vector<util::Rng> reset_rng_s;
  std::vector<util::Rng> action_rng;
  std::vector<std::size_t> remaining(n_lanes, episodes_per_lane);
  std::vector<bool> lane_done(n_lanes, false);

  for (std::size_t l = 0; l < n_lanes; ++l) {
    twins.push_back(std::make_unique<CompatibleSetEnv>(f.netlist, f.rare, f.matrix,
                                                       cfg, &scalar_pool));
    reset_rng_v.emplace_back(0xBEEF + 97 * l);
    reset_rng_s.emplace_back(0xBEEF + 97 * l);
    action_rng.emplace_back(0xF00D + 31 * l);
  }

  auto reset_lane = [&](std::size_t l) {
    // Resetting into an exhausted mask ends the episode immediately; keep
    // drawing until a playable episode starts or the lane's budget runs out.
    while (remaining[l] > 0) {
      venv.reset_lane(l, reset_rng_v[l]);
      const std::vector<float> scalar_obs = twins[l]->reset(reset_rng_s[l]);
      const auto vec_obs = venv.observation(l);
      ASSERT_TRUE(std::equal(vec_obs.begin(), vec_obs.end(), scalar_obs.begin(),
                             scalar_obs.end()));
      ASSERT_EQ(venv.action_mask(l), twins[l]->action_mask());
      if (!venv.action_mask(l).none()) return;
      --remaining[l];
    }
    lane_done[l] = true;
  };
  for (std::size_t l = 0; l < n_lanes; ++l) reset_lane(l);

  util::BitVec active(n_lanes);
  std::vector<std::uint32_t> actions(n_lanes, 0);
  for (;;) {
    active.clear_all();
    for (std::size_t l = 0; l < n_lanes; ++l)
      if (!lane_done[l]) active.set(l);
    if (active.none()) break;

    for (std::size_t l = 0; l < n_lanes; ++l) {
      if (!active.test(l)) continue;
      ASSERT_EQ(venv.action_mask(l), twins[l]->action_mask()) << "lane " << l;
      actions[l] = pick_masked_action(venv.action_mask(l), action_rng[l]);
    }
    venv.step(actions, active);

    for (std::size_t l = 0; l < n_lanes; ++l) {
      if (!active.test(l)) continue;
      const StepResult scalar = twins[l]->step(actions[l]);
      ASSERT_EQ(venv.reward(l), scalar.reward) << "lane " << l;
      ASSERT_EQ(venv.done(l), scalar.done) << "lane " << l;
      const auto vec_obs = venv.observation(l);
      ASSERT_TRUE(std::equal(vec_obs.begin(), vec_obs.end(),
                             scalar.observation.begin(), scalar.observation.end()))
          << "lane " << l;
      ASSERT_EQ(venv.action_mask(l), twins[l]->action_mask()) << "lane " << l;
      const bool over = venv.done(l) || venv.action_mask(l).none();
      if (over) {
        ASSERT_EQ(std::vector<std::uint32_t>(venv.members(l).begin(),
                                             venv.members(l).end()),
                  std::vector<std::uint32_t>(twins[l]->members().begin(),
                                             twins[l]->members().end()))
            << "lane " << l;
        --remaining[l];
        reset_lane(l);
      }
    }
  }

  if (expect_exact_sat_count) {
    std::uint64_t scalar_queries = 0;
    for (const auto& twin : twins) scalar_queries += twin->sat_queries();
    EXPECT_EQ(venv.sat_queries(), scalar_queries);
  }
  EXPECT_EQ(vec_pool.size(), scalar_pool.size());
  EXPECT_EQ(vec_pool.k_largest(vec_pool.size()),
            scalar_pool.k_largest(scalar_pool.size()));
}

TEST(VectorEnvDifferential, LanesMatchScalarEnvsAcrossAllModeCombos) {
  const Fixture f = make_fixture(51);
  if (f.rare.size() < 6) GTEST_SKIP();
  for (const RewardMode reward : {RewardMode::AllSteps, RewardMode::EndOfEpisode}) {
    for (const MaskMode mask : {MaskMode::Pairwise, MaskMode::None}) {
      EnvConfig cfg;
      cfg.reward_mode = reward;
      cfg.mask_mode = mask;
      // Witness signatures on one of the two mask modes per reward mode, so
      // both the witness sweep and the pure-SAT path get differential cover.
      if (mask == MaskMode::Pairwise) cfg.witness_signatures = &f.signatures;
      SCOPED_TRACE(testing::Message() << "reward=" << static_cast<int>(reward)
                                      << " mask=" << static_cast<int>(mask));
      run_lockstep_differential(f, cfg, /*n_lanes=*/5, /*episodes_per_lane=*/3,
                                CompatibleSetVectorEnv::SatBackend::PerLane,
                                /*expect_exact_sat_count=*/true);
    }
  }
}

TEST(VectorEnvDifferential, WitnessSweepFiresAndPreservesTrajectories) {
  const Fixture f = make_fixture(52, 300);
  if (f.rare.size() < 8) GTEST_SKIP();
  EnvConfig cfg;
  cfg.witness_signatures = &f.signatures;
  DistinctSetPool pool;
  CompatibleSetVectorEnv venv(f.netlist, f.rare, f.matrix, cfg, &pool, 4);
  std::vector<util::Rng> rngs;
  for (std::size_t l = 0; l < 4; ++l) rngs.emplace_back(7 + l);
  for (std::size_t l = 0; l < 4; ++l) venv.reset_lane(l, rngs[l]);
  util::BitVec active(4);
  active.set_all();
  std::vector<std::uint32_t> actions(4, 0);
  util::Rng act_rng(99);
  for (int s = 0; s < 12 && !active.none(); ++s) {
    for (std::size_t l = 0; l < 4; ++l)
      if (active.test(l)) actions[l] = pick_masked_action(venv.action_mask(l), act_rng);
    venv.step(actions, active);
    for (std::size_t l = 0; l < 4; ++l)
      if (active.test(l) && (venv.done(l) || venv.action_mask(l).none()))
        active.set(l, false);
  }
  EXPECT_GT(venv.witness_hits(), 0u)
      << "whole-word witness sweep never answered a joint check";
}

TEST(VectorEnvDifferential, SharedPortfolioBackendMatchesPerLane) {
  // With an ample conflict budget the clause-sharing portfolio backend must
  // produce the same trajectories as per-lane oracles (only budget-exhausted
  // Unknowns may legally differ, and this fixture never exhausts).
  const Fixture f = make_fixture(53);
  if (f.rare.size() < 6) GTEST_SKIP();
  EnvConfig cfg;
  run_lockstep_differential(f, cfg, /*n_lanes=*/4, /*episodes_per_lane=*/2,
                            CompatibleSetVectorEnv::SatBackend::SharedPortfolio,
                            /*expect_exact_sat_count=*/false);
}

TEST(VectorEnvDifferential, PooledSatDispatchIsBitIdenticalAtEveryLaneCount) {
  // sat_dispatch_threads >= 2 routes lane SAT queries through a private
  // thread pool. For the PerLane backend this must be bit-identical to the
  // sequential reference at every lane count (each lane's private oracle
  // sees its scalar twin's exact query stream, whatever thread executes it),
  // so the full lock-step differential — observations, masks, rewards,
  // members, SAT query counts — runs with exact matching. The clause-sharing
  // SharedPortfolio backend gets the same sweep under its existing contract
  // (trajectory equality; only budget-exhausted Unknowns may legally differ,
  // and this fixture never exhausts).
  const Fixture f = make_fixture(55);
  if (f.rare.size() < 6) GTEST_SKIP();
  for (const std::size_t lanes : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
    for (const std::size_t threads : {std::size_t{2}, std::size_t{3}}) {
      EnvConfig cfg;
      cfg.sat_dispatch_threads = threads;
      SCOPED_TRACE(testing::Message()
                   << "lanes=" << lanes << " dispatch_threads=" << threads);
      run_lockstep_differential(f, cfg, lanes, /*episodes_per_lane=*/2,
                                CompatibleSetVectorEnv::SatBackend::PerLane,
                                /*expect_exact_sat_count=*/true);
      run_lockstep_differential(f, cfg, lanes, /*episodes_per_lane=*/2,
                                CompatibleSetVectorEnv::SatBackend::SharedPortfolio,
                                /*expect_exact_sat_count=*/false);
    }
  }
}

// ------------------------------------------------- lane isolation (prop) ---

struct LaneTrace {
  std::vector<float> rewards;
  std::vector<std::vector<float>> observations;
  std::vector<util::BitVec> masks;
  std::vector<bool> dones;
};

/// Randomized property: killing lanes must not perturb survivors. A run where
/// a random subset of lanes goes dead after reset must leave the surviving
/// lanes bit-identical to a smaller batch containing only the survivors, and
/// the dead lanes themselves must stay frozen through every step().
TEST(VectorEnvProperty, DeadLanesStayFrozenAndSurvivorsAreUnaffected) {
  const Fixture f = make_fixture(54);
  if (f.rare.size() < 6) GTEST_SKIP();
  EnvConfig cfg;
  cfg.witness_signatures = &f.signatures;
  constexpr std::size_t kLanes = 6;

  for (const std::uint64_t trial : {1u, 2u, 3u}) {
    util::Rng trial_rng(trial * 7919);
    // Pick 3 random survivors; the rest go dead immediately after reset.
    std::vector<std::size_t> ids(kLanes);
    for (std::size_t i = 0; i < kLanes; ++i) ids[i] = i;
    trial_rng.shuffle(ids);
    const std::vector<std::size_t> survivors(ids.begin(), ids.begin() + 3);

    auto lane_rng = [&](std::size_t id) { return util::Rng(0xA5A5 + 131 * id); };
    auto act_rng = [&](std::size_t id) {
      return util::Rng(trial * 1000003 + 17 * id);
    };

    // --- full batch: all lanes reset, only survivors ever stepped ---------
    DistinctSetPool pool_a;
    CompatibleSetVectorEnv full(f.netlist, f.rare, f.matrix, cfg, &pool_a, kLanes);
    std::vector<util::Rng> reset_rngs;
    std::vector<util::Rng> action_rngs;
    for (std::size_t id = 0; id < kLanes; ++id) {
      reset_rngs.push_back(lane_rng(id));
      action_rngs.push_back(act_rng(id));
      full.reset_lane(id, reset_rngs[id]);
    }
    std::vector<LaneTrace> traces(kLanes);
    util::BitVec active(kLanes);
    std::vector<std::uint32_t> actions(kLanes, 0);
    for (int s = 0; s < 10; ++s) {
      active.clear_all();
      for (const std::size_t id : survivors)
        if (!full.done(id) && !full.action_mask(id).none()) active.set(id);
      if (active.none()) break;

      // Snapshot the dead lanes before stepping the survivors.
      std::vector<std::vector<float>> dead_obs(kLanes);
      std::vector<float> dead_reward(kLanes, 0.0f);
      for (std::size_t id = 0; id < kLanes; ++id) {
        if (active.test(id)) continue;
        const auto o = full.observation(id);
        dead_obs[id].assign(o.begin(), o.end());
        dead_reward[id] = full.reward(id);
      }

      for (std::size_t id = 0; id < kLanes; ++id)
        if (active.test(id))
          actions[id] = pick_masked_action(full.action_mask(id), action_rngs[id]);
      full.step(actions, active);

      for (std::size_t id = 0; id < kLanes; ++id) {
        if (active.test(id)) {
          const auto o = full.observation(id);
          traces[id].rewards.push_back(full.reward(id));
          traces[id].observations.emplace_back(o.begin(), o.end());
          traces[id].masks.push_back(full.action_mask(id));
          traces[id].dones.push_back(full.done(id));
        } else {
          const auto o = full.observation(id);
          EXPECT_TRUE(std::equal(o.begin(), o.end(), dead_obs[id].begin(),
                                 dead_obs[id].end()))
              << "inactive lane " << id << " observation drifted";
          EXPECT_EQ(full.reward(id), dead_reward[id])
              << "inactive lane " << id << " reward drifted";
        }
      }
    }

    // --- survivor-only batch: same identities, same streams, same actions -
    DistinctSetPool pool_b;
    CompatibleSetVectorEnv small(f.netlist, f.rare, f.matrix, cfg, &pool_b,
                                 survivors.size());
    std::vector<util::Rng> small_reset;
    std::vector<util::Rng> small_action;
    for (std::size_t k = 0; k < survivors.size(); ++k) {
      small_reset.push_back(lane_rng(survivors[k]));
      small_action.push_back(act_rng(survivors[k]));
      small.reset_lane(k, small_reset[k]);
    }
    std::vector<LaneTrace> small_traces(survivors.size());
    util::BitVec small_active(survivors.size());
    std::vector<std::uint32_t> small_actions(survivors.size(), 0);
    for (int s = 0; s < 10; ++s) {
      small_active.clear_all();
      for (std::size_t k = 0; k < survivors.size(); ++k)
        if (!small.done(k) && !small.action_mask(k).none()) small_active.set(k);
      if (small_active.none()) break;
      for (std::size_t k = 0; k < survivors.size(); ++k)
        if (small_active.test(k))
          small_actions[k] = pick_masked_action(small.action_mask(k), small_action[k]);
      small.step(small_actions, small_active);
      for (std::size_t k = 0; k < survivors.size(); ++k) {
        if (!small_active.test(k)) continue;
        const auto o = small.observation(k);
        small_traces[k].rewards.push_back(small.reward(k));
        small_traces[k].observations.emplace_back(o.begin(), o.end());
        small_traces[k].masks.push_back(small.action_mask(k));
        small_traces[k].dones.push_back(small.done(k));
      }
    }

    for (std::size_t k = 0; k < survivors.size(); ++k) {
      const LaneTrace& a = traces[survivors[k]];
      const LaneTrace& b = small_traces[k];
      EXPECT_EQ(a.rewards, b.rewards) << "trial " << trial << " survivor " << k;
      EXPECT_EQ(a.observations, b.observations)
          << "trial " << trial << " survivor " << k;
      EXPECT_EQ(a.masks, b.masks) << "trial " << trial << " survivor " << k;
      EXPECT_EQ(a.dones, b.dones) << "trial " << trial << " survivor " << k;
    }
  }
}

// --------------------------------------- trainer on the real environment ---

TEST(PpoVector, LanesMatchWorkersOnCompatibleSetEnv) {
  const Fixture f = make_fixture(55);
  if (f.rare.size() < 6) GTEST_SKIP();
  for (const RewardMode reward : {RewardMode::AllSteps, RewardMode::EndOfEpisode}) {
    for (const MaskMode mask : {MaskMode::Pairwise, MaskMode::None}) {
      EnvConfig env_cfg;
      env_cfg.reward_mode = reward;
      env_cfg.mask_mode = mask;
      env_cfg.witness_signatures = &f.signatures;
      SCOPED_TRACE(testing::Message() << "reward=" << static_cast<int>(reward)
                                      << " mask=" << static_cast<int>(mask));

      DistinctSetPool worker_pool;
      PpoConfig workers_cfg = toy_config();
      workers_cfg.episodes_per_update = 8;
      workers_cfg.n_workers = 3;
      PpoTrainer threaded(
          [&](std::size_t) {
            return std::make_unique<CompatibleSetEnv>(f.netlist, f.rare, f.matrix,
                                                      env_cfg, &worker_pool);
          },
          workers_cfg, 61);

      DistinctSetPool lane_pool;
      PpoConfig lanes_cfg = workers_cfg;
      lanes_cfg.n_workers = 1;
      lanes_cfg.rollout_lanes = 3;
      PpoTrainer vectorized(
          [&](std::size_t) {
            return std::make_unique<CompatibleSetEnv>(f.netlist, f.rare, f.matrix,
                                                      env_cfg, &lane_pool);
          },
          lanes_cfg, 61,
          [&](std::size_t lanes) {
            return std::make_unique<CompatibleSetVectorEnv>(
                f.netlist, f.rare, f.matrix, env_cfg, &lane_pool, lanes);
          });

      for (int u = 0; u < 2; ++u)
        expect_stats_equal(threaded.update(), vectorized.update());
      EXPECT_EQ(threaded.policy().flat_params(), vectorized.policy().flat_params());
      EXPECT_EQ(threaded.value().flat_params(), vectorized.value().flat_params());
      EXPECT_EQ(worker_pool.size(), lane_pool.size());
      EXPECT_EQ(worker_pool.k_largest(worker_pool.size()),
                lane_pool.k_largest(lane_pool.size()));
    }
  }
}

}  // namespace
}  // namespace deterrent

// Self-healing integration tests: session quarantine of corrupt artifacts,
// campaign retry/backoff/quarantine semantics, torn-write recovery, stage
// watchdog timeouts, and the randomized fault-injection soak that forces
// every compiled fault site to fire inside a multi-circuit campaign.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_gen/random_circuit.hpp"
#include "core/campaign.hpp"
#include "core/session.hpp"
#include "sim/pattern_io.hpp"
#include "util/faults.hpp"

namespace deterrent::core {
namespace {

namespace fs = std::filesystem;

using netlist::Netlist;
using util::faults::Action;
using util::faults::FaultSpec;

struct DisarmGuard {
  ~DisarmGuard() { util::faults::disarm_all(); }
};

Netlist make_circuit(std::uint64_t seed, std::size_t gates = 200) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 16;
  p.n_outputs = 8;
  p.n_gates = gates;
  p.seed = seed;
  return bench_gen::generate_random_circuit(p);
}

DeterrentConfig quick_config(std::uint64_t seed = 11) {
  DeterrentConfig cfg;
  cfg.rare.threshold = 0.15;
  cfg.rare.sim_patterns = 1 << 12;
  cfg.compat.sim_patterns = 1 << 12;
  cfg.env.reward_mode = RewardMode::EndOfEpisode;
  cfg.updates = 2;
  cfg.k_patterns = 8;
  cfg.seed = seed;
  cfg.ppo.episodes_per_update = 4;
  cfg.offline_threads = 2;
  return cfg;
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("deterrent_rob_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str(const char* file = nullptr) const {
    return file ? (path / file).string() : path.string();
  }
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::string bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), offset);
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x20);
  std::ofstream(path, std::ios::binary) << bytes;
}

/// Runs the full pipeline in `dir` and returns the extracted patterns text.
std::string run_to_completion(const Netlist& nl, const std::string& dir,
                              const DeterrentConfig& cfg) {
  Session session(dir, nl);
  auto pipeline = session.resume_or_init(cfg);
  const StageStatus status = pipeline->run_remaining();
  EXPECT_EQ(status, StageStatus::Complete);
  session.save(*pipeline);
  return sim::write_patterns_string(pipeline->patterns());
}

// ----------------------------------------- corruption quarantine ----------

TEST(Robustness, SessionQuarantinesAndRegeneratesEveryArtifactKind) {
  const Netlist nl = make_circuit(71);
  const DeterrentConfig cfg = quick_config(5);

  TempDir base("quar_base");
  const std::string baseline = run_to_completion(nl, base.str(), cfg);
  ASSERT_FALSE(baseline.empty());
  const std::string baseline_patterns_art = read_bytes(base.str(Session::kPatternFile));

  const char* kinds[] = {Session::kRareFile, Session::kCompatFile,
                         Session::kPolicyFile, Session::kPatternFile};
  for (const char* kind : kinds) {
    for (const bool truncate : {true, false}) {
      TempDir dir(std::string("quar_") + kind + (truncate ? "_t" : "_f"));
      // Seed the directory with a complete healthy run, then damage one file
      // the way an interrupted write (truncate) or silent media corruption
      // (bit flip) would.
      run_to_completion(nl, dir.str(), cfg);
      const std::string victim = dir.str(kind);
      if (truncate)
        fs::resize_file(victim, fs::file_size(victim) / 2);
      else
        flip_byte(victim, fs::file_size(victim) / 2);

      Session session(dir.str(), nl);
      auto pipeline = session.resume_or_init(cfg);
      ASSERT_EQ(session.quarantined().size(), 1u) << kind;
      EXPECT_EQ(session.quarantined()[0], kind);
      EXPECT_TRUE(fs::exists(victim + ".corrupt")) << kind;
      EXPECT_FALSE(fs::exists(victim)) << kind;

      // The damaged stage (and everything after it) regenerates to a final
      // state bit-identical to the undamaged baseline.
      EXPECT_EQ(pipeline->run_remaining(), StageStatus::Complete) << kind;
      session.save(*pipeline);
      EXPECT_EQ(sim::write_patterns_string(pipeline->patterns()), baseline) << kind;
      EXPECT_EQ(read_bytes(dir.str(Session::kPatternFile)), baseline_patterns_art)
          << kind;
    }
  }
}

TEST(Robustness, CorruptMetaFallsBackToSuppliedConfig) {
  const Netlist nl = make_circuit(72);
  const DeterrentConfig cfg = quick_config(6);
  TempDir dir("meta");
  run_to_completion(nl, dir.str(), cfg);
  flip_byte(dir.str(Session::kMetaFile), 30);

  Session session(dir.str(), nl);
  auto pipeline = session.resume_or_init(cfg);
  ASSERT_GE(session.quarantined().size(), 1u);
  EXPECT_EQ(session.quarantined()[0], Session::kMetaFile);
  EXPECT_TRUE(fs::exists(dir.str() + "/session.meta.corrupt"));
  EXPECT_EQ(pipeline->config().seed, cfg.seed);
  // The meta file was rewritten from the fallback, so a plain resume works.
  EXPECT_TRUE(session.has_meta());
  EXPECT_NO_THROW(session.load_config());
}

// -------------------------------------------------- campaign retries ------

TEST(Robustness, RetryBackoffScheduleIsClampedAndCapped) {
  // base 1ms, cap 10ms: 1, 2, 4, 8, then pinned at the cap forever.
  const double expected[] = {1.0, 2.0, 4.0, 8.0, 10.0, 10.0, 10.0};
  for (std::size_t attempt = 0; attempt < 7; ++attempt)
    EXPECT_DOUBLE_EQ(retry_backoff_delay_ms(1.0, attempt, 10.0),
                     expected[attempt])
        << "attempt " << attempt;
  // Attempt numbers far past the shift width neither overflow nor wrap back
  // to a short sleep — the old `base * (1ULL << attempt)` did exactly that.
  EXPECT_DOUBLE_EQ(retry_backoff_delay_ms(1.0, 4000, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(retry_backoff_delay_ms(250.0, ~std::size_t{0}, 1000.0), 1000.0);
  // cap <= 0 disables the cap, but the exponent still saturates at 62.
  EXPECT_DOUBLE_EQ(retry_backoff_delay_ms(1.0, 100, 0.0),
                   static_cast<double>(1ULL << 62));
  // Non-positive base never sleeps, whatever the attempt.
  EXPECT_DOUBLE_EQ(retry_backoff_delay_ms(0.0, 5, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(retry_backoff_delay_ms(-3.0, 5, 10.0), 0.0);
}

TEST(Robustness, CampaignRetriesTransientFaultAndSucceeds) {
  DisarmGuard guard;
  const Netlist nl = make_circuit(73);
  TempDir dir("retry");

  CampaignConfig cfg;
  cfg.base = quick_config(7);
  cfg.base.offline_threads = 1;
  cfg.base.ppo.n_workers = 1;
  cfg.threads = 1;
  cfg.session_root = dir.str();
  cfg.max_retries = 2;
  cfg.retry_backoff_ms = 1.0;

  // One transient failure at the second stage boundary: the first attempt
  // dies mid-run, the retry resumes from the session and completes.
  FaultSpec spec;
  spec.action = Action::Throw;
  spec.nth = 2;
  util::faults::arm("pipeline.stage_boundary", spec);

  Campaign campaign(cfg);
  campaign.add("rc", nl);
  const auto report = campaign.run();
  ASSERT_EQ(report.circuits.size(), 1u);
  EXPECT_TRUE(report.circuits[0].ok) << report.circuits[0].error;
  EXPECT_EQ(report.circuits[0].attempts, 2u);
  EXPECT_FALSE(report.circuits[0].quarantined);
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_NE(report.to_table().find("(x2)"), std::string::npos);
}

TEST(Robustness, CampaignQuarantinesPermanentErrorWithoutRetrying) {
  const Netlist nl = make_circuit(74);
  CampaignConfig cfg;
  cfg.base = quick_config(8);
  // An impossible rareness threshold: "no rare nets" is a configuration
  // error no retry can fix.
  cfg.base.rare.threshold = 1e-12;
  cfg.threads = 1;
  cfg.max_retries = 3;
  cfg.retry_backoff_ms = 1.0;

  Campaign campaign(cfg);
  campaign.add("rc", nl);
  const auto report = campaign.run();
  ASSERT_EQ(report.circuits.size(), 1u);
  EXPECT_FALSE(report.circuits[0].ok);
  EXPECT_TRUE(report.circuits[0].quarantined);
  EXPECT_EQ(report.circuits[0].attempts, 1u);  // no retry on PermanentError
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_NE(report.to_table().find("quarantined"), std::string::npos);
}

TEST(Robustness, CampaignContainsNonStdExceptions) {
  const Netlist nl = make_circuit(75);
  CampaignConfig cfg;
  cfg.base = quick_config(9);
  cfg.threads = 1;
  cfg.max_retries = 2;
  cfg.retry_backoff_ms = 1.0;

  Campaign campaign(cfg);
  campaign.add("rc", nl);
  campaign.set_evaluator([](const CampaignCircuit&, const Pipeline&,
                            const sim::PatternSet&) -> double {
    throw 42;  // not a std::exception
  });
  const auto report = campaign.run();  // must not terminate the process
  ASSERT_EQ(report.circuits.size(), 1u);
  EXPECT_FALSE(report.circuits[0].ok);
  EXPECT_TRUE(report.circuits[0].quarantined);
  EXPECT_NE(report.circuits[0].error.find("non-std"), std::string::npos);
}

// ------------------------------------------------------ torn writes -------

TEST(Robustness, TornWriteIsQuarantinedOnResume) {
  DisarmGuard guard;
  const Netlist nl = make_circuit(76);
  const DeterrentConfig cfg = quick_config(10);

  TempDir base("torn_base");
  const std::string baseline = run_to_completion(nl, base.str(), cfg);

  for (const char* action : {"torn-truncate", "torn-flip"}) {
    TempDir dir(std::string("torn_") + action);
    // Write #3 of a fresh session run is rare_nets.art (meta is #1, the
    // lint sidecar #2): the file reaches its final name damaged, exactly
    // like a power loss.
    util::faults::arm_from_string(std::string("serialize.write_artifact=") +
                                  action + "@3");
    run_to_completion(nl, dir.str(), cfg);
    util::faults::disarm_all();
    EXPECT_THROW(RareNetArtifact::load(dir.str(Session::kRareFile)), Error) << action;

    Session session(dir.str(), nl);
    auto pipeline = session.resume_or_init(cfg);
    ASSERT_EQ(session.quarantined().size(), 1u) << action;
    EXPECT_EQ(session.quarantined()[0], Session::kRareFile);
    EXPECT_EQ(pipeline->run_remaining(), StageStatus::Complete);
    session.save(*pipeline);
    EXPECT_EQ(sim::write_patterns_string(pipeline->patterns()), baseline) << action;
  }
}

// --------------------------------------------------------- watchdog -------

TEST(Robustness, WatchdogConvertsHangIntoTimedOutStage) {
  DisarmGuard guard;
  const Netlist nl = make_circuit(77);
  const DeterrentConfig cfg = quick_config(12);

  FaultSpec spec;
  spec.action = Action::Hang;
  spec.nth = 1;
  spec.hang_ms = 60'000;
  util::faults::arm("sat.query", spec);

  Pipeline pipeline(nl, cfg);
  StageControl control;
  control.stage_timeout_seconds = 0.3;
  // The hang fires at the first SAT query (compatibility build, inside a
  // worker thread); the adopted watchdog deadline converts it into a clean
  // TimedOut instead of a wedged stage.
  EXPECT_EQ(pipeline.run_remaining(control), StageStatus::TimedOut);
  EXPECT_FALSE(pipeline.compatibility_done());

  // Disarmed, the same pipeline object simply reruns the stage.
  util::faults::disarm_all();
  EXPECT_EQ(pipeline.run_remaining(control), StageStatus::Complete);
  EXPECT_GT(pipeline.patterns().pattern_count(), 0u);
}

TEST(Robustness, TrainFaultPoisonsPipelineAndSaveSkipsPolicy) {
  DisarmGuard guard;
  const Netlist nl = make_circuit(78);
  const DeterrentConfig cfg = quick_config(13);
  TempDir dir("poison");

  Session session(dir.str(), nl);
  auto pipeline = session.resume_or_init(cfg);
  ASSERT_EQ(pipeline->run_rare_nets(), StageStatus::Complete);
  ASSERT_EQ(pipeline->run_compatibility(), StageStatus::Complete);
  session.save(*pipeline);
  ASSERT_FALSE(session.has_policy());

  // Fail the first training-time SAT query: the exception escapes mid-update,
  // so the in-memory trainer state is suspect and must not be checkpointed.
  FaultSpec spec;
  spec.action = Action::Throw;
  spec.nth = 1;
  util::faults::arm("sat.query", spec);
  EXPECT_THROW(pipeline->run_train(), FaultInjectedError);
  util::faults::disarm_all();
  EXPECT_TRUE(pipeline->poisoned());

  session.save(*pipeline);
  EXPECT_FALSE(session.has_policy());  // poisoned state was not persisted

  // Recovery path: rebuild from the saved artifacts and finish cleanly.
  auto recovered = session.resume_or_init(cfg);
  EXPECT_TRUE(session.quarantined().empty());
  EXPECT_FALSE(recovered->poisoned());
  EXPECT_EQ(recovered->run_remaining(), StageStatus::Complete);
  session.save(*recovered);
  EXPECT_TRUE(session.has_policy());
}

// -------------------------------------------------------------- soak ------

TEST(Robustness, FaultInjectionSoakNeverCrashesAndHealsBitIdentically) {
  DisarmGuard guard;
  const Netlist c1 = make_circuit(81, 180);
  const Netlist c2 = make_circuit(82, 180);
  const Netlist c3 = make_circuit(83, 180);

  CampaignConfig cfg;
  cfg.base = quick_config(21);
  cfg.base.offline_threads = 1;
  // Two PPO workers so training actually fans out through util::ThreadPool —
  // with every thread count at 1 the pool paths run inline and the
  // threadpool.task site would never be reached.
  cfg.base.ppo.n_workers = 2;
  // Two portfolio clones so the offline phase routes through sat::Portfolio
  // and its clause-sharing channel — otherwise the sat.portfolio.share site
  // would never be reached.
  cfg.base.compat.portfolio_threads = 2;
  cfg.threads = 1;  // deterministic hit ordering across the whole campaign
  cfg.max_retries = 6;
  cfg.retry_backoff_ms = 1.0;
  cfg.stage_timeout_seconds = 1.0;

  const auto enroll = [&](Campaign& campaign) {
    campaign.add("soak1", c1);
    campaign.add("soak2", c2);
    campaign.add("soak3", c3);
  };

  // Faultless baseline campaign.
  TempDir base("soak_base");
  cfg.session_root = base.str();
  Campaign baseline(cfg);
  enroll(baseline);
  const auto clean = baseline.run();
  ASSERT_EQ(clean.completed, 3u);

  // Fault plan: every compiled site armed with a one-shot (Nth-hit) fault —
  // transient throws, a hang long enough that only the watchdog ends it,
  // silent bit flips, and a load-time throw (which needs a retry's resume
  // to even reach a load). All fire within the first circuit's attempts.
  // The faulted campaign also shares an artifact cache so the cache.* sites
  // are reachable: cache.fetch throws on the first hydration probe, and
  // cache.store tears a published entry (any later probe of that entry must
  // evict it rather than serve it — fetch validates the whole envelope).
  TempDir dir("soak");
  TempDir cache("soak_cache");
  cfg.session_root = dir.str();
  cfg.cache_dir = cache.str();
  util::faults::arm_from_string(
      "seed=9;"
      "pipeline.stage_boundary=throw@4;"
      "threadpool.task=throw@1;"
      "sat.portfolio.share=throw@2;"
      "sat.query=hang@5:60000;"
      "serialize.write_artifact=torn-flip@3;"
      "session.load_artifact=throw@2;"
      "cache.fetch=throw@1;"
      "cache.store=torn-flip@1");

  Campaign campaign(cfg);
  enroll(campaign);
  const auto report = campaign.run();

  // Invariant: no crash, no deadlock (we got here), and every circuit either
  // healed to a clean completion or reports a clean degraded status.
  ASSERT_EQ(report.circuits.size(), 3u);
  for (const auto& row : report.circuits) {
    if (!row.ok) {
      EXPECT_FALSE(row.error.empty()) << row.name;
      EXPECT_TRUE(row.quarantined) << row.name;
    }
  }
  // One-shot faults with generous retries: the campaign must fully heal.
  EXPECT_EQ(report.completed, 3u) << report.to_table();

  // Every registered site actually fired at least once.
  for (const auto& site : util::faults::known_sites())
    EXPECT_GE(util::faults::fired_count(site), 1u) << site;
  util::faults::disarm_all();

  // No torn temp files left anywhere in the session tree.
  for (const auto& entry : fs::recursive_directory_iterator(dir.path)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }

  // Disarmed re-run over the same sessions: resume never breaks (any
  // lingering corrupt file quarantines and regenerates), and the final
  // patterns are bit-identical to the faultless baseline.
  Campaign rerun(cfg);
  enroll(rerun);
  const auto healed = rerun.run();
  EXPECT_EQ(healed.completed, 3u) << healed.to_table();
  const char* names[] = {"soak1", "soak2", "soak3"};
  for (const char* name : names) {
    const std::string a =
        read_bytes((base.path / name / Session::kPatternFile).string());
    const std::string b =
        read_bytes((dir.path / name / Session::kPatternFile).string());
    ASSERT_FALSE(a.empty()) << name;
    EXPECT_EQ(a, b) << name << ": healed patterns diverged from baseline";
  }
}

}  // namespace
}  // namespace deterrent::core

#include <gtest/gtest.h>

#include <set>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "analysis/scoap.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sat/oracle.hpp"
#include "sim/probability.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::analysis {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

Netlist small_random(std::uint64_t seed, std::size_t gates = 150, std::size_t inputs = 12) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = inputs;
  p.n_outputs = 6;
  p.n_gates = gates;
  p.seed = seed;
  return bench_gen::generate_random_circuit(p);
}

// ---------------------------------------------------------- rare nets ------

TEST(RareNets, AndChainIsRareOne) {
  // y = AND of 5 inputs: P(1) = 1/32 < 0.1 ⇒ rare value 1.
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(GateType::And, ins, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  const auto stats = sim::exact_signal_stats(nl);
  const auto rare = find_rare_nets(nl, stats, {});
  ASSERT_EQ(rare.size(), 1u);
  EXPECT_EQ(rare[0].net, y);
  EXPECT_TRUE(rare[0].rare_value);
  EXPECT_DOUBLE_EQ(rare[0].probability, 1.0 / 32.0);
}

TEST(RareNets, NandChainIsRareZero) {
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(GateType::Nand, ins, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  const auto rare = find_rare_nets(nl, sim::exact_signal_stats(nl), {});
  ASSERT_EQ(rare.size(), 1u);
  EXPECT_FALSE(rare[0].rare_value);  // the rare value is 0
}

TEST(RareNets, ThresholdIsExclusive) {
  // OR of 3 inputs: P(0) = 1/8 = 0.125. Threshold 0.125 ⇒ not rare (strict <);
  // threshold 0.13 ⇒ rare.
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(GateType::Or, ins, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  const auto stats = sim::exact_signal_stats(nl);
  RareNetConfig cfg;
  cfg.threshold = 0.125;
  EXPECT_TRUE(find_rare_nets(nl, stats, cfg).empty());
  cfg.threshold = 0.13;
  EXPECT_EQ(find_rare_nets(nl, stats, cfg).size(), 1u);
}

TEST(RareNets, InputsAndConstantsExcluded) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId c0 = b.add_const(false);
  const NetId y = b.add_gate(GateType::Or, {a, c0}, "y");  // p = 0.5, not rare
  b.mark_output(y);
  const Netlist nl = b.build();
  const auto rare = find_rare_nets(nl, sim::exact_signal_stats(nl), {});
  EXPECT_TRUE(rare.empty());
}

TEST(RareNets, UntoggledNetsExcludedByDefault) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId na = b.add_gate(GateType::Not, {a});
  const NetId y = b.add_gate(GateType::And, {a, na}, "y");  // constant 0
  b.mark_output(y);
  const Netlist nl = b.build();
  const auto stats = sim::exact_signal_stats(nl);
  EXPECT_TRUE(find_rare_nets(nl, stats, {}).empty());
  RareNetConfig keep;
  keep.exclude_untoggled = false;
  const auto rare = find_rare_nets(nl, stats, keep);
  ASSERT_EQ(rare.size(), 1u);
  EXPECT_EQ(rare[0].net, y);
}

TEST(RareNets, MonotoneInThreshold) {
  const Netlist nl = small_random(17, 300);
  util::Rng rng(5);
  const auto stats = sim::estimate_signal_stats(nl, 1 << 14, rng);
  std::size_t prev = 0;
  for (const double theta : {0.05, 0.08, 0.10, 0.12, 0.14}) {
    RareNetConfig cfg;
    cfg.threshold = theta;
    const auto rare = find_rare_nets(nl, stats, cfg);
    EXPECT_GE(rare.size(), prev) << "threshold " << theta;
    prev = rare.size();
    for (const auto& rn : rare) EXPECT_LT(rn.probability, theta);
  }
}

TEST(RareNets, EstimatedMatchesExactClassification) {
  const Netlist nl = small_random(23, 120, 10);
  const auto exact = sim::exact_signal_stats(nl);
  util::Rng rng(11);
  util::ThreadPool pool(2);
  RareNetConfig cfg;
  cfg.sim_patterns = 1 << 15;
  const auto est_rare = find_rare_nets(nl, cfg, rng, &pool);
  const auto exact_rare = find_rare_nets(nl, exact, cfg);
  // Allow borderline differences: every definitely-rare net (margin below
  // threshold) must appear in the estimated set.
  std::set<NetId> est_ids;
  for (const auto& rn : est_rare) est_ids.insert(rn.net);
  for (const auto& rn : exact_rare)
    if (rn.probability < cfg.threshold - 0.02)
      EXPECT_TRUE(est_ids.count(rn.net)) << "net " << rn.net;
}

// -------------------------------------------------------------- SCOAP ------

TEST(Scoap, InputsAreUnity) {
  const Netlist nl = netlist::read_bench_string("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n");
  const auto v = compute_scoap(nl);
  const NetId a = *nl.find("a");
  EXPECT_EQ(v.cc0[a], 1u);
  EXPECT_EQ(v.cc1[a], 1u);
}

TEST(Scoap, AndGateTextbookValues) {
  const Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  const auto v = compute_scoap(nl);
  const NetId y = *nl.find("y");
  EXPECT_EQ(v.cc1[y], 3u);  // CC1(a)+CC1(b)+1
  EXPECT_EQ(v.cc0[y], 2u);  // min(CC0)+1
  // Observability of a: CO(y)=0, side input b must be 1: 0 + CC1(b) + 1 = 2.
  EXPECT_EQ(v.co[*nl.find("a")], 2u);
}

TEST(Scoap, NotGateSwapsControllability) {
  const Netlist nl =
      netlist::read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  const auto v = compute_scoap(nl);
  const NetId y = *nl.find("y");
  EXPECT_EQ(v.cc0[y], 2u);
  EXPECT_EQ(v.cc1[y], 2u);
  EXPECT_EQ(v.co[*nl.find("a")], 1u);
}

TEST(Scoap, DeepChainAccumulates) {
  // y = a1 & a2 & ... via a chain of 2-input ANDs: CC1 grows linearly.
  NetlistBuilder b;
  NetId acc = b.add_input();
  std::vector<NetId> chain{acc};
  for (int i = 0; i < 9; ++i) {
    const NetId in = b.add_input();
    acc = b.add_gate(GateType::And, {acc, in});
    chain.push_back(acc);
  }
  b.mark_output(acc);
  const Netlist nl = b.build();
  const auto v = compute_scoap(nl);
  std::uint32_t prev = 1;
  for (std::size_t k = 1; k < chain.size(); ++k) {
    EXPECT_GT(v.cc1[chain[k]], prev);
    prev = v.cc1[chain[k]];
  }
  // Each AND stage adds CC1(new input)=1 plus the +1 gate cost: 1 + 2·9.
  EXPECT_EQ(v.cc1[chain.back()], 19u);
}

TEST(Scoap, ConstantsAreUncontrollableTheOtherWay) {
  NetlistBuilder b;
  const NetId c1 = b.add_const(true);
  const NetId a = b.add_input();
  const NetId y = b.add_gate(GateType::And, {c1, a});
  b.mark_output(y);
  const auto v = compute_scoap(b.build());
  EXPECT_EQ(v.cc1[c1], 0u);
  EXPECT_EQ(v.cc0[c1], ScoapValues::kInfinity);
}

TEST(Scoap, UnobservableNetStaysInfinite) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId dead = b.add_gate(GateType::Not, {a});  // not connected to any PO
  const NetId y = b.add_gate(GateType::Buf, {a});
  b.mark_output(y);
  const Netlist nl = b.build();
  const auto v = compute_scoap(nl);
  EXPECT_EQ(v.co[dead], ScoapValues::kInfinity);
  EXPECT_EQ(v.co[y], 0u);
}

TEST(Scoap, XorObservabilityUsesCheapestSide) {
  const Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
  const auto v = compute_scoap(nl);
  // CO(a) = CO(y) + min(CC0(b), CC1(b)) + 1 = 0 + 1 + 1.
  EXPECT_EQ(v.co[*nl.find("a")], 2u);
}

TEST(Scoap, RejectsSequential) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  b.mark_output(b.add_dff(a));
  EXPECT_THROW(compute_scoap(b.build()), Error);
}

// ------------------------------------------------------ compatibility ------

TEST(Compatibility, MatrixBasics) {
  CompatibilityMatrix m(4);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_FALSE(m.compatible(0, 1));
  m.set(0, 1);
  EXPECT_TRUE(m.compatible(0, 1));
  EXPECT_TRUE(m.compatible(1, 0));  // symmetric
  EXPECT_EQ(m.edge_count(), 1u);
  m.set(2, 2);  // diagonal: singleton satisfiability, not an edge
  EXPECT_EQ(m.edge_count(), 1u);
  EXPECT_TRUE(m.singleton_satisfiable(2));
  EXPECT_DOUBLE_EQ(m.average_degree(), 2.0 * 1.0 / 4.0);
}

TEST(Compatibility, EdgeCountCacheInvalidatesOnSet) {
  CompatibilityMatrix m(6);
  EXPECT_EQ(m.edge_count(), 0u);
  m.set(0, 1);
  m.set(2, 3);
  EXPECT_EQ(m.edge_count(), 2u);
  EXPECT_EQ(m.edge_count(), 2u);  // cached path must agree
  m.set(0, 1, false);
  EXPECT_EQ(m.edge_count(), 1u);
  m.set(4, 4);  // diagonal writes invalidate but never add an edge
  EXPECT_EQ(m.edge_count(), 1u);
  m.set(4, 5);
  EXPECT_EQ(m.edge_count(), 2u);
  EXPECT_DOUBLE_EQ(m.average_degree(), 2.0 * 2.0 / 6.0);
}

TEST(Compatibility, SignaturesMarkRareActivations) {
  // y1 = AND(a,b) rare at 1; y2 = NOR(a,b) rare at... p=1/4 each (not below
  // 0.1, but signatures don't care about thresholds).
  const Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = AND(a, b)\ny2 = NOR(a, b)\n");
  std::vector<RareNet> rare{{*nl.find("y1"), true, 0.25}, {*nl.find("y2"), true, 0.25}};
  util::Rng rng(3);
  const auto sigs = rare_activation_signatures(nl, rare, 512, rng);
  ASSERT_EQ(sigs.size(), 2u);
  // y1 and y2 can never be 1 simultaneously: signatures must be disjoint.
  EXPECT_FALSE(sigs[0].intersects(sigs[1]));
  EXPECT_TRUE(sigs[0].any());
  EXPECT_TRUE(sigs[1].any());
  // With p=0.25 each, counts should be near 128 of 512.
  EXPECT_NEAR(static_cast<double>(sigs[0].count()), 128.0, 40.0);
}

TEST(Compatibility, ExclusiveRareValuesIncompatible) {
  // y1 = AND(a,b) @1 and y2 = NOR(a,b) @1 are mutually exclusive.
  const Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = AND(a, b)\ny2 = NOR(a, b)\n");
  std::vector<RareNet> rare{{*nl.find("y1"), true, 0.25}, {*nl.find("y2"), true, 0.25}};
  util::Rng rng(5);
  CompatibilityBuildStats stats;
  const auto matrix = build_compatibility(nl, rare, {}, rng, nullptr, &stats);
  EXPECT_FALSE(matrix.compatible(0, 1));
  EXPECT_TRUE(matrix.singleton_satisfiable(0));
  EXPECT_TRUE(matrix.singleton_satisfiable(1));
  EXPECT_EQ(stats.sat_unsat, 1u);  // the (0,1) pair had to go to SAT
}

TEST(Compatibility, UnsatSingletonClearsRow) {
  // y = AND(a, NOT a) can never be 1.
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId na = b.add_gate(GateType::Not, {a});
  const NetId y = b.add_gate(GateType::And, {a, na}, "y");
  const NetId z = b.add_gate(GateType::Or, {a, na}, "z");  // constant 1
  b.mark_output(y);
  b.mark_output(z);
  const Netlist nl = b.build();
  std::vector<RareNet> rare{{y, true, 0.0}, {z, false, 0.0}};
  util::Rng rng(7);
  CompatibilityBuildStats stats;
  const auto matrix = build_compatibility(nl, rare, {}, rng, nullptr, &stats);
  EXPECT_FALSE(matrix.singleton_satisfiable(0));
  EXPECT_FALSE(matrix.compatible(0, 1));
  EXPECT_EQ(stats.unsat_singletons, 2u);  // both impossible
}

/// Property: matrix content equals ground-truth pairwise SAT on random
/// circuits, regardless of whether the pre-filter or the solver resolved it.
class CompatibilityGroundTruth : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompatibilityGroundTruth, MatchesDirectSatQueries) {
  const Netlist nl = small_random(GetParam(), 200, 10);
  util::Rng rng(GetParam() + 1);
  RareNetConfig rcfg;
  rcfg.threshold = 0.2;  // permissive: more pairs to check
  rcfg.sim_patterns = 1 << 13;
  auto rare = find_rare_nets(nl, rcfg, rng);
  if (rare.size() > 25) rare.resize(25);
  if (rare.size() < 2) GTEST_SKIP() << "profile produced too few rare nets";

  CompatibilityBuildConfig ccfg;
  ccfg.sim_patterns = 1 << 10;  // weak prefilter: force SAT involvement
  util::Rng rng2(GetParam() + 2);
  const auto matrix = build_compatibility(nl, rare, ccfg, rng2);

  sat::NetlistOracle oracle(nl);
  for (std::uint32_t i = 0; i < rare.size(); ++i) {
    for (std::uint32_t j = i; j < rare.size(); ++j) {
      const sat::Constraint cs[2] = {{rare[i].net, rare[i].rare_value},
                                     {rare[j].net, rare[j].rare_value}};
      const bool truth = oracle.satisfiable({cs, i == j ? 1u : 2u});
      // Singleton-unsat rows are cleared wholesale, which may erase true
      // pairwise bits; account for that.
      const bool cleared =
          !matrix.singleton_satisfiable(i) || !matrix.singleton_satisfiable(j);
      if (!cleared)
        EXPECT_EQ(matrix.compatible(i, j), truth) << "pair " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompatibilityGroundTruth,
                         ::testing::Values(101, 202, 303, 404));

TEST(Compatibility, ThreadedBuildMatchesSequential) {
  const Netlist nl = small_random(55, 250, 12);
  util::Rng rng(9);
  RareNetConfig rcfg;
  rcfg.threshold = 0.15;
  const auto rare = find_rare_nets(nl, rcfg, rng);
  if (rare.size() < 3) GTEST_SKIP();

  util::Rng rng_a(42);
  util::Rng rng_b(42);
  util::ThreadPool pool(4);
  const auto seq = build_compatibility(nl, rare, {}, rng_a, nullptr);
  const auto par = build_compatibility(nl, rare, {}, rng_b, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::uint32_t i = 0; i < seq.size(); ++i)
    for (std::uint32_t j = 0; j < seq.size(); ++j)
      ASSERT_EQ(seq.compatible(i, j), par.compatible(i, j)) << i << "," << j;
}

TEST(Compatibility, StatsAddUp) {
  const Netlist nl = small_random(66, 200, 10);
  util::Rng rng(13);
  RareNetConfig rcfg;
  rcfg.threshold = 0.15;
  const auto rare = find_rare_nets(nl, rcfg, rng);
  if (rare.empty()) GTEST_SKIP();
  CompatibilityBuildStats stats;
  util::Rng rng2(14);
  build_compatibility(nl, rare, {}, rng2, nullptr, &stats);
  const std::size_t n = rare.size();
  EXPECT_EQ(stats.pair_count, n * (n + 1) / 2);
  EXPECT_EQ(stats.sim_resolved + stats.sat_sat + stats.sat_unsat + stats.timeout_pairs,
            stats.pair_count);
  EXPECT_GT(stats.build_seconds, 0.0);
}

}  // namespace
}  // namespace deterrent::analysis

// Differential tests for the batch simulation engine: sim::Engine must agree
// bit-exactly with the scalar reference oracle (evaluate_naive) on every gate
// type, arity, circuit shape, sweep width W, and pattern-count boundary, its
// threaded sweeps must agree with single-threaded ones, and every SIMD kernel
// backend this host supports must agree word-for-word with the scalar backend
// on both full evaluation and incremental re-simulation.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "bench_gen/random_circuit.hpp"
#include "sim/engine.hpp"
#include "sim/kernels/dispatch.hpp"
#include "sim/probability.hpp"
#include "sim/simulator.hpp"
#include "trojan/coverage.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

Netlist random_circuit(std::uint64_t seed, std::size_t gates = 150,
                       std::size_t inputs = 10) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = inputs;
  p.n_outputs = 6;
  p.n_gates = gates;
  p.seed = seed;
  p.wide_gate_fraction = 0.25;  // force plenty of n-ary fallback ops
  return bench_gen::generate_random_circuit(p);
}

/// Engine values of every net for every pattern, evaluated in sweeps of
/// `words_per_sweep` blocks, flattened to per-pattern bool rows.
std::vector<std::vector<bool>> engine_all_values(const Netlist& nl,
                                                 const PatternSet& patterns,
                                                 std::size_t words_per_sweep) {
  const Engine engine(nl);
  std::vector<std::vector<bool>> rows(patterns.pattern_count(),
                                      std::vector<bool>(nl.net_count()));
  engine.sweep(
      patterns,
      [&](std::size_t first_block, std::size_t n_words, const EvalBuffer& buf) {
        for (std::size_t w = 0; w < n_words; ++w) {
          const std::uint64_t valid = patterns.valid_mask(first_block + w);
          for (int lane = 0; lane < 64; ++lane) {
            if (!((valid >> lane) & 1ULL)) continue;
            const std::size_t pat = (first_block + w) * 64 + static_cast<std::size_t>(lane);
            for (NetId id = 0; id < nl.net_count(); ++id)
              rows[pat][id] = (buf.word(id, w) >> lane) & 1ULL;
          }
        }
      },
      words_per_sweep);
  return rows;
}

std::vector<bool> naive_for_pattern(const Netlist& nl, const PatternSet& patterns,
                                    std::size_t pat) {
  std::vector<bool> inputs(nl.inputs().size());
  for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = patterns.bit(pat, i);
  return evaluate_naive(nl, inputs);
}

// ------------------------------------------------------------ gate types ---

TEST(Engine, RejectsSequential) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId q = b.add_dff(a);
  b.mark_output(q);
  const Netlist nl = b.build();
  EXPECT_THROW(Engine{nl}, Error);
}

TEST(Engine, ConstantsMatchNaive) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId c0 = b.add_const(false);
  const NetId c1 = b.add_const(true);
  const NetId y = b.add_gate(GateType::And, {a, c1});
  b.mark_output(c0);
  b.mark_output(y);
  const Netlist nl = b.build();
  const Engine engine(nl);
  for (const bool av : {false, true}) {
    Pattern p(1);
    p.set(0, av);
    const auto got = engine.evaluate_pattern(p);
    const auto want = evaluate_naive(nl, {av});
    for (NetId id = 0; id < nl.net_count(); ++id) EXPECT_EQ(got[id], want[id]);
  }
}

/// Exhaustive check of one gate of the given type/arity against the naive
/// oracle — covers the Buf/Not specializations (arity 1), the two-operand
/// kernels (arity 2), and the CSR n-ary fallback (arity >= 3, including
/// arities beyond what the random generator emits).
class EngineGateTypes
    : public ::testing::TestWithParam<std::tuple<GateType, std::size_t>> {};

TEST_P(EngineGateTypes, ExhaustiveMatchesNaive) {
  const auto [type, arity] = GetParam();
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (std::size_t i = 0; i < arity; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(type, ins);
  b.mark_output(y);
  const Netlist nl = b.build();

  PatternSet patterns(arity);
  const std::size_t total = std::size_t{1} << arity;
  for (std::size_t v = 0; v < total; ++v) {
    Pattern p(arity);
    for (std::size_t i = 0; i < arity; ++i) p.set(i, (v >> i) & 1);
    patterns.push(p);
  }

  const auto rows = engine_all_values(nl, patterns, 1);
  for (std::size_t pat = 0; pat < total; ++pat) {
    const auto want = naive_for_pattern(nl, patterns, pat);
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(rows[pat][id], want[id])
          << netlist::to_string(type) << " arity " << arity << " pattern " << pat;
  }
}

INSTANTIATE_TEST_SUITE_P(
    UnaryGates, EngineGateTypes,
    ::testing::Combine(::testing::Values(GateType::Buf, GateType::Not),
                       ::testing::Values(std::size_t{1})));

INSTANTIATE_TEST_SUITE_P(
    NaryGates, EngineGateTypes,
    ::testing::Combine(::testing::Values(GateType::And, GateType::Nand, GateType::Or,
                                         GateType::Nor, GateType::Xor, GateType::Xnor),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                         std::size_t{5}, std::size_t{7})));

// -------------------------------------------------- random differential ----

/// (seed, pattern_count, words_per_sweep) — pattern counts deliberately not
/// multiples of 64 to exercise the last-block valid_mask path, and W spans
/// the specialized sweep widths.
class EngineDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, std::size_t>> {
};

TEST_P(EngineDifferential, MatchesNaiveOnRandomCircuits) {
  const auto [seed, pattern_count, words] = GetParam();
  const Netlist nl = random_circuit(seed);
  util::Rng rng(seed * 131 + 17);
  const auto patterns = PatternSet::random(nl.inputs().size(), pattern_count, rng);

  const auto rows = engine_all_values(nl, patterns, words);
  for (std::size_t pat = 0; pat < pattern_count; ++pat) {
    const auto want = naive_for_pattern(nl, patterns, pat);
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(rows[pat][id], want[id]) << "net " << id << " pattern " << pat;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByWidth, EngineDifferential,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(std::size_t{63}, std::size_t{130},
                                         std::size_t{257}),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{8})));

TEST(Engine, SweepWidthInvariant) {
  // The same pattern set must produce identical value words at every sweep
  // width, including widths without a specialized kernel (3, 5) that take the
  // generic runtime-W path.
  const Netlist nl = random_circuit(9, 200, 12);
  util::Rng rng(1234);
  const auto patterns = PatternSet::random(nl.inputs().size(), 300, rng);
  const auto reference = engine_all_values(nl, patterns, 1);
  for (const std::size_t words : {std::size_t{3}, std::size_t{5}, std::size_t{8}}) {
    const auto rows = engine_all_values(nl, patterns, words);
    ASSERT_EQ(rows, reference) << "words_per_sweep " << words;
  }
}

TEST(Engine, EvaluatePatternMatchesNaive) {
  const Netlist nl = random_circuit(4);
  const Engine engine(nl);
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Pattern p(nl.inputs().size());
    std::vector<bool> inputs(nl.inputs().size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i] = rng.bernoulli(0.5);
      p.set(i, inputs[i]);
    }
    EXPECT_EQ(engine.evaluate_pattern(p), evaluate_naive(nl, inputs));
  }
}

// ----------------------------------------------------------- determinism ---

TEST(Engine, ThreadedSignalStatsMatchSingleThreaded) {
  const Netlist nl = random_circuit(21, 250, 14);
  util::ThreadPool pool(4);
  util::Rng rng1(77);
  util::Rng rng2(77);
  const auto seq = estimate_signal_stats(nl, 5000, rng1, nullptr);
  const auto par = estimate_signal_stats(nl, 5000, rng2, &pool);
  ASSERT_EQ(seq.ones, par.ones);
}

TEST(Engine, ThreadedSignaturesMatchSingleThreaded) {
  const Netlist nl = random_circuit(22, 250, 14);
  util::Rng stats_rng(3);
  const auto stats = estimate_signal_stats(nl, 4096, stats_rng);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.3;  // generous: we only need a non-trivial net list
  const auto rare = analysis::find_rare_nets(nl, stats, rcfg);
  ASSERT_FALSE(rare.empty());

  util::ThreadPool pool(4);
  util::Rng rng1(5);
  util::Rng rng2(5);
  const auto seq = analysis::rare_activation_signatures(nl, rare, 777, rng1, nullptr);
  const auto par = analysis::rare_activation_signatures(nl, rare, 777, rng2, &pool);
  ASSERT_EQ(seq, par);
}

TEST(Engine, SignaturesMatchPerPatternSimulation) {
  // Whole-word signature writes must agree with a pattern-at-a-time check.
  const Netlist nl = random_circuit(23, 180, 10);
  util::Rng stats_rng(3);
  const auto stats = estimate_signal_stats(nl, 4096, stats_rng);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.3;
  const auto rare = analysis::find_rare_nets(nl, stats, rcfg);
  ASSERT_FALSE(rare.empty());

  const std::size_t n_patterns = 130;  // non-multiple of 64
  util::Rng sig_rng(9);
  const auto sigs = analysis::rare_activation_signatures(nl, rare, n_patterns, sig_rng);
  // rare_activation_signatures draws its PatternSet first with the given rng;
  // replay the identical draw to recover the patterns it simulated.
  util::Rng replay_rng(9);
  const auto patterns = PatternSet::random(nl.inputs().size(), n_patterns, replay_rng);

  for (std::size_t r = 0; r < rare.size(); ++r) {
    for (std::size_t pat = 0; pat < n_patterns; ++pat) {
      const auto values = naive_for_pattern(nl, patterns, pat);
      ASSERT_EQ(sigs[r].test(pat), values[rare[r].net] == rare[r].rare_value)
          << "rare " << r << " pattern " << pat;
    }
  }
}

// ------------------------------------------------ incremental resimulate ---

std::vector<std::uint64_t> random_input_words(std::size_t n_inputs, std::size_t words,
                                              util::Rng& rng) {
  std::vector<std::uint64_t> v(n_inputs * words);
  for (auto& w : v) w = rng.next_word();
  return v;
}

/// (seed, words_per_sweep) — long mutate/resimulate chains with dirty sets of
/// varying size (single-bit, multi-bit, near-dense) must stay bit-identical
/// to a from-scratch evaluate of the same input state, for every net & word.
class EngineIncremental
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(EngineIncremental, ChainMatchesFullEvaluate) {
  const auto [seed, words] = GetParam();
  const Netlist nl = random_circuit(seed, 250, 16);
  const Engine engine(nl);
  const std::size_t n_inputs = nl.inputs().size();
  util::Rng rng(seed * 977 + 5);

  auto inputs = random_input_words(n_inputs, words, rng);
  EvalBuffer inc, full;
  engine.evaluate(inc, inputs, words);
  ASSERT_TRUE(inc.primed_for(engine));

  const std::size_t dirty_sizes[] = {1, 1, 2, 5, 1, n_inputs, 3, 1};
  for (int step = 0; step < 40; ++step) {
    const std::size_t n_dirty = dirty_sizes[step % std::size(dirty_sizes)];
    std::vector<std::uint32_t> dirty;
    std::vector<std::uint64_t> dirty_words;
    for (std::size_t j = 0; j < n_dirty; ++j) {
      const auto i = static_cast<std::uint32_t>(rng.below(n_inputs));
      dirty.push_back(i);
      for (std::size_t w = 0; w < words; ++w) {
        // Occasionally re-submit the unchanged value to exercise the
        // no-actual-change skip.
        const std::uint64_t nw =
            rng.bernoulli(0.2) ? inputs[i * words + w] : rng.next_word();
        dirty_words.push_back(nw);
        inputs[i * words + w] = nw;  // duplicates: later entries win, as spec'd
      }
    }
    const std::size_t evaluated = engine.resimulate(inc, dirty, dirty_words, words);
    EXPECT_LE(evaluated, nl.gate_count());

    engine.evaluate(full, inputs, words);
    ASSERT_EQ(std::vector<std::uint64_t>(inc.flat().begin(), inc.flat().end()),
              std::vector<std::uint64_t>(full.flat().begin(), full.flat().end()))
        << "step " << step << " dirty " << n_dirty << " words " << words;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByWidth, EngineIncremental,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{8})));

/// Every gate type / arity under single-bit resimulation: a one-gate netlist
/// walked through all input combinations one bit flip at a time (Gray code)
/// must match the naive oracle at each step.
class EngineIncrementalGateTypes
    : public ::testing::TestWithParam<std::tuple<GateType, std::size_t>> {};

TEST_P(EngineIncrementalGateTypes, GrayWalkMatchesNaive) {
  const auto [type, arity] = GetParam();
  if ((type == GateType::Buf || type == GateType::Not) && arity != 1)
    GTEST_SKIP() << "unary gates only take one fanin";
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (std::size_t i = 0; i < arity; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(type, ins);
  b.mark_output(y);
  const Netlist nl = b.build();
  const Engine engine(nl);

  std::vector<std::uint64_t> words(arity, 0);  // start at all-zero, W = 1
  EvalBuffer buf;
  engine.evaluate(buf, words, 1);
  std::size_t code = 0;
  for (std::size_t step = 1; step < (std::size_t{1} << arity); ++step) {
    const std::size_t next = step ^ (step >> 1);  // Gray walk over all combos
    const auto bit = static_cast<std::uint32_t>(std::countr_zero(code ^ next));
    code = next;
    words[bit] = ~words[bit];
    engine.resimulate(buf, {&bit, 1}, {&words[bit], 1}, 1);

    std::vector<bool> in_bits(arity);
    for (std::size_t i = 0; i < arity; ++i) in_bits[i] = words[i] & 1ULL;
    const auto want = evaluate_naive(nl, in_bits);
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(bool(buf.word(id, 0) & 1ULL), want[id])
          << netlist::to_string(type) << " arity " << arity << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, EngineIncrementalGateTypes,
    ::testing::Combine(::testing::Values(GateType::And, GateType::Nand, GateType::Or,
                                         GateType::Nor, GateType::Xor, GateType::Xnor,
                                         GateType::Buf, GateType::Not),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{3}, std::size_t{5})));

TEST(Engine, ResimulateSingleBitTouchesSubsetOfProgram) {
  // On a circuit with many inputs, a single-bit flip must re-evaluate a
  // proper subset of the program — the whole point of the incremental mode.
  const Netlist nl = random_circuit(12, 2000, 64);
  const Engine engine(nl);
  util::Rng rng(42);
  auto inputs = random_input_words(nl.inputs().size(), 1, rng);
  EvalBuffer buf;
  engine.evaluate(buf, inputs, 1);
  std::size_t total = 0;
  for (std::uint32_t bit = 0; bit < 32; ++bit) {
    inputs[bit] = ~inputs[bit];
    total += engine.resimulate(buf, {&bit, 1}, {&inputs[bit], 1}, 1);
  }
  EXPECT_LT(total, 32 * nl.gate_count());
}

/// Pins the exact dense-fallback crossover of Engine::resimulate: with
/// `dirty * 4 >= inputs` the call abandons the event-driven worklist for a
/// full program sweep. The two code paths are told apart through the
/// gate-evaluation count — each input here drives one private NOT (cone size
/// 1) while a constant-fed buffer chain pads the program, so the worklist
/// path returns the dirty count and the dense path returns the program size.
/// Values must be identical to a from-scratch evaluate on both sides.
class EngineDenseFallbackBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EngineDenseFallbackBoundary, ThresholdCrossoverIsExactAndBitIdentical) {
  const std::size_t n_inputs = GetParam();
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (std::size_t i = 0; i < n_inputs; ++i) ins.push_back(b.add_input());
  for (const NetId in : ins) b.mark_output(b.add_gate(GateType::Not, {in}));
  // Padding outside every input cone: the program must be strictly larger
  // than any dirty set so the two return values cannot collide.
  NetId pad = b.add_const(false);
  for (int k = 0; k < 8; ++k) pad = b.add_gate(GateType::Buf, {pad});
  b.mark_output(pad);
  const Netlist nl = b.build();
  const Engine engine(nl);

  // Integer form of "dirty/inputs >= 1/4": smallest dirty count with
  // dirty * 4 >= n_inputs.
  const std::size_t threshold = (n_inputs + 3) / 4;
  ASSERT_GE(threshold, 2u) << "need threshold-1 >= 1 dirty input";

  util::Rng rng(n_inputs * 37 + 1);
  auto inputs = random_input_words(n_inputs, 1, rng);
  EvalBuffer inc, full;
  engine.evaluate(inc, inputs, 1);

  for (const std::size_t n_dirty : {threshold - 1, threshold, threshold + 1}) {
    ASSERT_LE(n_dirty, n_inputs);
    std::vector<std::uint32_t> dirty;
    std::vector<std::uint64_t> dirty_words;
    for (std::size_t j = 0; j < n_dirty; ++j) {
      dirty.push_back(static_cast<std::uint32_t>(j));
      dirty_words.push_back(~inputs[j]);
      inputs[j] = ~inputs[j];
    }
    const std::size_t evaluated = engine.resimulate(inc, dirty, dirty_words, 1);
    if (n_dirty < threshold) {
      // Worklist path: exactly the flipped inputs' private cones.
      EXPECT_EQ(evaluated, n_dirty) << "expected the event-driven path";
    } else {
      // Dense fallback: one full sweep, program size evaluations.
      EXPECT_EQ(evaluated, nl.gate_count()) << "expected the dense fallback";
    }
    engine.evaluate(full, inputs, 1);
    ASSERT_EQ(std::vector<std::uint64_t>(inc.flat().begin(), inc.flat().end()),
              std::vector<std::uint64_t>(full.flat().begin(), full.flat().end()))
        << n_inputs << " inputs, " << n_dirty << " dirty";
  }
}

/// 16 divides evenly (threshold 4 == 16/4); 17 and 18 exercise the rounding
/// of the integer comparison (threshold 5); 8 is the smallest interesting
/// program.
INSTANTIATE_TEST_SUITE_P(InputCounts, EngineDenseFallbackBoundary,
                         ::testing::Values(std::size_t{8}, std::size_t{16},
                                           std::size_t{17}, std::size_t{18}));

TEST(Engine, DenseFallbackCountsSubmittedEntriesNotActualChanges) {
  // The fallback heuristic triggers on the *submitted* dirty-entry count,
  // before no-change filtering: submitting every input with unchanged words
  // takes the dense path (program-size evaluations) yet stays bit-identical.
  const Netlist nl = random_circuit(8, 120, 12);
  const Engine engine(nl);
  util::Rng rng(77);
  const auto inputs = random_input_words(nl.inputs().size(), 1, rng);
  EvalBuffer buf, reference;
  engine.evaluate(buf, inputs, 1);
  engine.evaluate(reference, inputs, 1);
  std::vector<std::uint32_t> dirty(nl.inputs().size());
  for (std::uint32_t i = 0; i < dirty.size(); ++i) dirty[i] = i;
  EXPECT_EQ(engine.resimulate(buf, dirty, inputs, 1), nl.gate_count());
  ASSERT_EQ(std::vector<std::uint64_t>(buf.flat().begin(), buf.flat().end()),
            std::vector<std::uint64_t>(reference.flat().begin(),
                                       reference.flat().end()));
}

TEST(EngineDeath, ResimulateRequiresPrimedBuffer) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const Netlist nl = random_circuit(5);
  const Engine engine(nl);
  EvalBuffer unprimed;
  const std::uint32_t bit = 0;
  const std::uint64_t word = ~0ULL;
  EXPECT_DEATH(engine.resimulate(unprimed, {&bit, 1}, {&word, 1}, 1),
               "primed");
}

TEST(Engine, IncrementalTriggerCheckerMatchesEvaluateCoverage) {
  const Netlist nl = random_circuit(31, 200, 10);
  util::Rng stats_rng(3);
  const auto stats = estimate_signal_stats(nl, 4096, stats_rng);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.4;
  const auto rare = analysis::find_rare_nets(nl, stats, rcfg);
  ASSERT_GE(rare.size(), 4u);
  std::vector<trojan::Trojan> trojans;
  for (std::size_t i = 0; i + 1 < rare.size() && trojans.size() < 12; i += 2)
    trojans.push_back({{rare[i], rare[i + 1]}, 0});

  trojan::IncrementalTriggerChecker checker(nl, trojans);
  util::Rng rng(321);
  Pattern pattern(nl.inputs().size());
  for (std::size_t i = 0; i < pattern.size(); ++i) pattern.set(i, rng.bernoulli(0.5));
  for (int step = 0; step < 60; ++step) {
    const auto& fired = checker.check(pattern);
    PatternSet single(nl.inputs().size());
    single.push(pattern);
    const auto reference = trojan::evaluate_coverage(nl, trojans, single);
    for (std::size_t t = 0; t < trojans.size(); ++t)
      ASSERT_EQ(fired[t], reference.first_activation[t] == 0)
          << "trojan " << t << " step " << step;
    // Mutate 1–3 bits for the next round, as a search loop would.
    const std::size_t flips = 1 + rng.below(3);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t bit = rng.below(pattern.size());
      pattern.set(bit, !pattern.test(bit));
    }
  }
}

// --------------------------------------------------- SIMD kernel backends ---

std::vector<std::uint64_t> to_words(std::span<const std::uint64_t> s) {
  return {s.begin(), s.end()};
}

/// Scoped environment-variable override that restores the prior value (or
/// absence) on destruction, so ISA-forcing tests cannot leak state into the
/// rest of the suite.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (saved_.has_value())
      ::setenv(name_, saved_->c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(EngineSimd, DetectionIsSaneAndStable) {
  const auto isas = kernels::supported_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), kernels::Isa::Scalar);  // scalar is always runnable
  for (const auto isa : isas) {
    EXPECT_TRUE(kernels::isa_supported(isa));
    EXPECT_TRUE(kernels::isa_compiled(isa));
  }
  // best_isa must itself be supported and at least as wide as anything else.
  const auto best = kernels::best_isa();
  EXPECT_TRUE(kernels::isa_supported(best));
  for (const auto isa : isas) EXPECT_GE(static_cast<int>(best), static_cast<int>(isa));
}

TEST(EngineSimd, IsaNamesRoundTrip) {
  for (const auto isa : {kernels::Isa::Scalar, kernels::Isa::Neon, kernels::Isa::Avx2,
                         kernels::Isa::Avx512})
    EXPECT_EQ(kernels::parse_isa(kernels::to_string(isa)), isa);
  EXPECT_FALSE(kernels::parse_isa("sse9").has_value());
  EXPECT_FALSE(kernels::parse_isa("").has_value());
}

/// Full evaluate: every supported backend must produce a value buffer
/// bit-identical to the scalar backend's, for every net and word — including
/// ragged sweep widths that exercise the wide kernels' tail handling (the
/// AVX-512 masked tail and the scalar tails of narrower backends) both below
/// one register (W=3, 5, 7) and past it (W=9, 11, 13).
TEST(EngineSimd, BackendsBitIdenticalOnEvaluate) {
  for (const std::uint64_t seed : {1, 2, 3}) {
    const Netlist nl = random_circuit(seed, 300, 14);
    const Engine scalar_engine(nl, kernels::Isa::Scalar);
    ASSERT_EQ(scalar_engine.isa(), kernels::Isa::Scalar);
    for (const auto isa : kernels::supported_isas()) {
      const Engine backend(nl, isa);
      EXPECT_EQ(backend.isa(), isa);
      for (const std::size_t words :
           {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
            std::size_t{7}, std::size_t{8}, std::size_t{9}, std::size_t{11},
            std::size_t{13}}) {
        util::Rng rng(seed * 71 + words);
        const auto inputs = random_input_words(nl.inputs().size(), words, rng);
        EvalBuffer ref, got;
        scalar_engine.evaluate(ref, inputs, words);
        backend.evaluate(got, inputs, words);
        ASSERT_EQ(to_words(got.flat()), to_words(ref.flat()))
            << kernels::to_string(isa) << " seed " << seed << " W " << words;
      }
    }
  }
}

/// Incremental resimulate: the same mutate/resimulate chain, run through
/// every backend, must track the scalar backend word-for-word at every step
/// (dirty sets span single-bit, multi-bit, and the dense-fallback regime).
TEST(EngineSimd, BackendsBitIdenticalOnResimulate) {
  const Netlist nl = random_circuit(17, 300, 16);
  const std::size_t n_inputs = nl.inputs().size();
  const Engine scalar_engine(nl, kernels::Isa::Scalar);
  for (const auto isa : kernels::supported_isas()) {
    const Engine backend(nl, isa);
    for (const std::size_t words : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                                    std::size_t{11}}) {
      util::Rng rng(words * 131 + 7);
      auto inputs = random_input_words(n_inputs, words, rng);
      EvalBuffer ref, got;
      scalar_engine.evaluate(ref, inputs, words);
      backend.evaluate(got, inputs, words);

      const std::size_t dirty_sizes[] = {1, 2, 1, 5, n_inputs, 1, 3};
      for (int step = 0; step < 30; ++step) {
        const std::size_t n_dirty = dirty_sizes[step % std::size(dirty_sizes)];
        std::vector<std::uint32_t> dirty;
        std::vector<std::uint64_t> dirty_words;
        for (std::size_t j = 0; j < n_dirty; ++j) {
          const auto i = static_cast<std::uint32_t>(rng.below(n_inputs));
          dirty.push_back(i);
          for (std::size_t w = 0; w < words; ++w) {
            const std::uint64_t nw = rng.next_word();
            dirty_words.push_back(nw);
            inputs[i * words + w] = nw;
          }
        }
        scalar_engine.resimulate(ref, dirty, dirty_words, words);
        backend.resimulate(got, dirty, dirty_words, words);
        ASSERT_EQ(to_words(got.flat()), to_words(ref.flat()))
            << kernels::to_string(isa) << " W " << words << " step " << step;
      }
    }
  }
}

TEST(EngineSimd, ForcedIsaConstructorArgument) {
  const Netlist nl = random_circuit(6);
  for (const auto isa : kernels::supported_isas())
    EXPECT_EQ(Engine(nl, isa).isa(), isa);
}

TEST(EngineSimd, ForcedIsaEnvOverride) {
  const Netlist nl = random_circuit(6);
  {
    ScopedEnv env(kernels::kForceIsaEnv, "scalar");
    EXPECT_EQ(Engine(nl).isa(), kernels::Isa::Scalar);
  }
  {
    // Empty means unset: auto-detect, never an error.
    ScopedEnv env(kernels::kForceIsaEnv, "");
    EXPECT_EQ(Engine(nl).isa(), kernels::best_isa());
  }
  {
    ScopedEnv env(kernels::kForceIsaEnv, "sse9");
    EXPECT_THROW(Engine{nl}, Error);
  }
}

TEST(EngineSimd, ForcingUnsupportedIsaThrows) {
  // Find a backend this host cannot run. x86 hosts can never run NEON and
  // aarch64 hosts can never run AVX2, so at least one always exists.
  std::optional<kernels::Isa> unsupported;
  for (const auto isa : {kernels::Isa::Neon, kernels::Isa::Avx2, kernels::Isa::Avx512})
    if (!kernels::isa_supported(isa)) {
      unsupported = isa;
      break;
    }
  ASSERT_TRUE(unsupported.has_value());

  const Netlist nl = random_circuit(6);
  EXPECT_THROW(Engine(nl, *unsupported), Error);
  EXPECT_THROW(kernels::kernel_table(*unsupported), Error);
  {
    ScopedEnv env(kernels::kForceIsaEnv, kernels::to_string(*unsupported));
    EXPECT_THROW(Engine{nl}, Error);
  }
}

// -------------------------------------------------------------- coverage ---

TEST(Engine, CoverageMatchesNaivePerPattern) {
  const Netlist nl = random_circuit(31, 200, 10);
  util::Rng stats_rng(3);
  const auto stats = estimate_signal_stats(nl, 4096, stats_rng);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.4;
  const auto rare = analysis::find_rare_nets(nl, stats, rcfg);
  ASSERT_GE(rare.size(), 4u);

  // Synthetic trojans over rare-net pairs; coverage only reads the trigger.
  std::vector<trojan::Trojan> trojans;
  for (std::size_t i = 0; i + 1 < rare.size() && trojans.size() < 12; i += 2)
    trojans.push_back({{rare[i], rare[i + 1]}, 0});

  util::Rng rng(55);
  const auto patterns = PatternSet::random(nl.inputs().size(), 200, rng);
  const auto result = trojan::evaluate_coverage(nl, trojans, patterns);

  for (std::size_t t = 0; t < trojans.size(); ++t) {
    std::size_t want = trojan::CoverageResult::kNever;
    for (std::size_t pat = 0; pat < patterns.pattern_count(); ++pat) {
      const auto values = naive_for_pattern(nl, patterns, pat);
      bool fired = true;
      for (const auto& rn : trojans[t].trigger)
        fired = fired && values[rn.net] == rn.rare_value;
      if (fired) {
        want = pat;
        break;
      }
    }
    EXPECT_EQ(result.first_activation[t], want) << "trojan " << t;
  }
}

}  // namespace
}  // namespace deterrent::sim

// Differential tests for the batch simulation engine: sim::Engine must agree
// bit-exactly with the scalar reference oracle (evaluate_naive) on every gate
// type, arity, circuit shape, sweep width W, and pattern-count boundary, and
// its threaded sweeps must agree with single-threaded ones.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "bench_gen/random_circuit.hpp"
#include "sim/engine.hpp"
#include "sim/probability.hpp"
#include "sim/simulator.hpp"
#include "trojan/coverage.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

Netlist random_circuit(std::uint64_t seed, std::size_t gates = 150,
                       std::size_t inputs = 10) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = inputs;
  p.n_outputs = 6;
  p.n_gates = gates;
  p.seed = seed;
  p.wide_gate_fraction = 0.25;  // force plenty of n-ary fallback ops
  return bench_gen::generate_random_circuit(p);
}

/// Engine values of every net for every pattern, evaluated in sweeps of
/// `words_per_sweep` blocks, flattened to per-pattern bool rows.
std::vector<std::vector<bool>> engine_all_values(const Netlist& nl,
                                                 const PatternSet& patterns,
                                                 std::size_t words_per_sweep) {
  const Engine engine(nl);
  std::vector<std::vector<bool>> rows(patterns.pattern_count(),
                                      std::vector<bool>(nl.net_count()));
  engine.sweep(
      patterns,
      [&](std::size_t first_block, std::size_t n_words, const EvalBuffer& buf) {
        for (std::size_t w = 0; w < n_words; ++w) {
          const std::uint64_t valid = patterns.valid_mask(first_block + w);
          for (int lane = 0; lane < 64; ++lane) {
            if (!((valid >> lane) & 1ULL)) continue;
            const std::size_t pat = (first_block + w) * 64 + static_cast<std::size_t>(lane);
            for (NetId id = 0; id < nl.net_count(); ++id)
              rows[pat][id] = (buf.word(id, w) >> lane) & 1ULL;
          }
        }
      },
      words_per_sweep);
  return rows;
}

std::vector<bool> naive_for_pattern(const Netlist& nl, const PatternSet& patterns,
                                    std::size_t pat) {
  std::vector<bool> inputs(nl.inputs().size());
  for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = patterns.bit(pat, i);
  return evaluate_naive(nl, inputs);
}

// ------------------------------------------------------------ gate types ---

TEST(Engine, RejectsSequential) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId q = b.add_dff(a);
  b.mark_output(q);
  const Netlist nl = b.build();
  EXPECT_THROW(Engine{nl}, Error);
}

TEST(Engine, ConstantsMatchNaive) {
  NetlistBuilder b;
  const NetId a = b.add_input();
  const NetId c0 = b.add_const(false);
  const NetId c1 = b.add_const(true);
  const NetId y = b.add_gate(GateType::And, {a, c1});
  b.mark_output(c0);
  b.mark_output(y);
  const Netlist nl = b.build();
  const Engine engine(nl);
  for (const bool av : {false, true}) {
    Pattern p(1);
    p.set(0, av);
    const auto got = engine.evaluate_pattern(p);
    const auto want = evaluate_naive(nl, {av});
    for (NetId id = 0; id < nl.net_count(); ++id) EXPECT_EQ(got[id], want[id]);
  }
}

/// Exhaustive check of one gate of the given type/arity against the naive
/// oracle — covers the Buf/Not specializations (arity 1), the two-operand
/// kernels (arity 2), and the CSR n-ary fallback (arity >= 3, including
/// arities beyond what the random generator emits).
class EngineGateTypes
    : public ::testing::TestWithParam<std::tuple<GateType, std::size_t>> {};

TEST_P(EngineGateTypes, ExhaustiveMatchesNaive) {
  const auto [type, arity] = GetParam();
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (std::size_t i = 0; i < arity; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(type, ins);
  b.mark_output(y);
  const Netlist nl = b.build();

  PatternSet patterns(arity);
  const std::size_t total = std::size_t{1} << arity;
  for (std::size_t v = 0; v < total; ++v) {
    Pattern p(arity);
    for (std::size_t i = 0; i < arity; ++i) p.set(i, (v >> i) & 1);
    patterns.push(p);
  }

  const auto rows = engine_all_values(nl, patterns, 1);
  for (std::size_t pat = 0; pat < total; ++pat) {
    const auto want = naive_for_pattern(nl, patterns, pat);
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(rows[pat][id], want[id])
          << netlist::to_string(type) << " arity " << arity << " pattern " << pat;
  }
}

INSTANTIATE_TEST_SUITE_P(
    UnaryGates, EngineGateTypes,
    ::testing::Combine(::testing::Values(GateType::Buf, GateType::Not),
                       ::testing::Values(std::size_t{1})));

INSTANTIATE_TEST_SUITE_P(
    NaryGates, EngineGateTypes,
    ::testing::Combine(::testing::Values(GateType::And, GateType::Nand, GateType::Or,
                                         GateType::Nor, GateType::Xor, GateType::Xnor),
                       ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{3},
                                         std::size_t{5}, std::size_t{7})));

// -------------------------------------------------- random differential ----

/// (seed, pattern_count, words_per_sweep) — pattern counts deliberately not
/// multiples of 64 to exercise the last-block valid_mask path, and W spans
/// the specialized sweep widths.
class EngineDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, std::size_t>> {
};

TEST_P(EngineDifferential, MatchesNaiveOnRandomCircuits) {
  const auto [seed, pattern_count, words] = GetParam();
  const Netlist nl = random_circuit(seed);
  util::Rng rng(seed * 131 + 17);
  const auto patterns = PatternSet::random(nl.inputs().size(), pattern_count, rng);

  const auto rows = engine_all_values(nl, patterns, words);
  for (std::size_t pat = 0; pat < pattern_count; ++pat) {
    const auto want = naive_for_pattern(nl, patterns, pat);
    for (NetId id = 0; id < nl.net_count(); ++id)
      ASSERT_EQ(rows[pat][id], want[id]) << "net " << id << " pattern " << pat;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByWidth, EngineDifferential,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(std::size_t{63}, std::size_t{130},
                                         std::size_t{257}),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{8})));

TEST(Engine, SweepWidthInvariant) {
  // The same pattern set must produce identical value words at every sweep
  // width, including widths without a specialized kernel (3, 5) that take the
  // generic runtime-W path.
  const Netlist nl = random_circuit(9, 200, 12);
  util::Rng rng(1234);
  const auto patterns = PatternSet::random(nl.inputs().size(), 300, rng);
  const auto reference = engine_all_values(nl, patterns, 1);
  for (const std::size_t words : {std::size_t{3}, std::size_t{5}, std::size_t{8}}) {
    const auto rows = engine_all_values(nl, patterns, words);
    ASSERT_EQ(rows, reference) << "words_per_sweep " << words;
  }
}

TEST(Engine, EvaluatePatternMatchesNaive) {
  const Netlist nl = random_circuit(4);
  const Engine engine(nl);
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Pattern p(nl.inputs().size());
    std::vector<bool> inputs(nl.inputs().size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i] = rng.bernoulli(0.5);
      p.set(i, inputs[i]);
    }
    EXPECT_EQ(engine.evaluate_pattern(p), evaluate_naive(nl, inputs));
  }
}

// ----------------------------------------------------------- determinism ---

TEST(Engine, ThreadedSignalStatsMatchSingleThreaded) {
  const Netlist nl = random_circuit(21, 250, 14);
  util::ThreadPool pool(4);
  util::Rng rng1(77);
  util::Rng rng2(77);
  const auto seq = estimate_signal_stats(nl, 5000, rng1, nullptr);
  const auto par = estimate_signal_stats(nl, 5000, rng2, &pool);
  ASSERT_EQ(seq.ones, par.ones);
}

TEST(Engine, ThreadedSignaturesMatchSingleThreaded) {
  const Netlist nl = random_circuit(22, 250, 14);
  util::Rng stats_rng(3);
  const auto stats = estimate_signal_stats(nl, 4096, stats_rng);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.3;  // generous: we only need a non-trivial net list
  const auto rare = analysis::find_rare_nets(nl, stats, rcfg);
  ASSERT_FALSE(rare.empty());

  util::ThreadPool pool(4);
  util::Rng rng1(5);
  util::Rng rng2(5);
  const auto seq = analysis::rare_activation_signatures(nl, rare, 777, rng1, nullptr);
  const auto par = analysis::rare_activation_signatures(nl, rare, 777, rng2, &pool);
  ASSERT_EQ(seq, par);
}

TEST(Engine, SignaturesMatchPerPatternSimulation) {
  // Whole-word signature writes must agree with a pattern-at-a-time check.
  const Netlist nl = random_circuit(23, 180, 10);
  util::Rng stats_rng(3);
  const auto stats = estimate_signal_stats(nl, 4096, stats_rng);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.3;
  const auto rare = analysis::find_rare_nets(nl, stats, rcfg);
  ASSERT_FALSE(rare.empty());

  const std::size_t n_patterns = 130;  // non-multiple of 64
  util::Rng sig_rng(9);
  const auto sigs = analysis::rare_activation_signatures(nl, rare, n_patterns, sig_rng);
  // rare_activation_signatures draws its PatternSet first with the given rng;
  // replay the identical draw to recover the patterns it simulated.
  util::Rng replay_rng(9);
  const auto patterns = PatternSet::random(nl.inputs().size(), n_patterns, replay_rng);

  for (std::size_t r = 0; r < rare.size(); ++r) {
    for (std::size_t pat = 0; pat < n_patterns; ++pat) {
      const auto values = naive_for_pattern(nl, patterns, pat);
      ASSERT_EQ(sigs[r].test(pat), values[rare[r].net] == rare[r].rare_value)
          << "rare " << r << " pattern " << pat;
    }
  }
}

// -------------------------------------------------------------- coverage ---

TEST(Engine, CoverageMatchesNaivePerPattern) {
  const Netlist nl = random_circuit(31, 200, 10);
  util::Rng stats_rng(3);
  const auto stats = estimate_signal_stats(nl, 4096, stats_rng);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.4;
  const auto rare = analysis::find_rare_nets(nl, stats, rcfg);
  ASSERT_GE(rare.size(), 4u);

  // Synthetic trojans over rare-net pairs; coverage only reads the trigger.
  std::vector<trojan::Trojan> trojans;
  for (std::size_t i = 0; i + 1 < rare.size() && trojans.size() < 12; i += 2)
    trojans.push_back({{rare[i], rare[i + 1]}, 0});

  util::Rng rng(55);
  const auto patterns = PatternSet::random(nl.inputs().size(), 200, rng);
  const auto result = trojan::evaluate_coverage(nl, trojans, patterns);

  for (std::size_t t = 0; t < trojans.size(); ++t) {
    std::size_t want = trojan::CoverageResult::kNever;
    for (std::size_t pat = 0; pat < patterns.pattern_count(); ++pat) {
      const auto values = naive_for_pattern(nl, patterns, pat);
      bool fired = true;
      for (const auto& rn : trojans[t].trigger)
        fired = fired && values[rn.net] == rn.rare_value;
      if (fired) {
        want = pat;
        break;
      }
    }
    EXPECT_EQ(result.first_activation[t], want) << "trojan " << t;
  }
}

}  // namespace
}  // namespace deterrent::sim

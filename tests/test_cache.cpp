// Content-addressed artifact cache + sharded compatibility build tests:
// hit/miss/evict accounting, config-hash sensitivity (any serialized
// DeterrentConfig knob must change the key), corrupt-entry quarantine and
// regeneration, sharded-vs-monolithic bit-identity at several shard counts,
// and kill-mid-build resume from persisted shard partials.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "bench_gen/random_circuit.hpp"
#include "core/artifact_cache.hpp"
#include "core/compat_shards.hpp"
#include "core/session.hpp"
#include "netlist/stats.hpp"
#include "sim/pattern_io.hpp"
#include "util/faults.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::core {
namespace {

namespace fs = std::filesystem;

using netlist::Netlist;

struct DisarmGuard {
  ~DisarmGuard() { util::faults::disarm_all(); }
};

Netlist make_circuit(std::uint64_t seed, std::size_t gates = 200) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 16;
  p.n_outputs = 8;
  p.n_gates = gates;
  p.seed = seed;
  return bench_gen::generate_random_circuit(p);
}

DeterrentConfig quick_config(std::uint64_t seed = 11) {
  DeterrentConfig cfg;
  cfg.rare.threshold = 0.15;
  cfg.rare.sim_patterns = 1 << 12;
  cfg.compat.sim_patterns = 1 << 12;
  cfg.env.reward_mode = RewardMode::EndOfEpisode;
  cfg.updates = 2;
  cfg.k_patterns = 8;
  cfg.seed = seed;
  cfg.ppo.episodes_per_update = 4;
  cfg.offline_threads = 2;
  return cfg;
}

struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("deterrent_cache_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str(const char* file = nullptr) const {
    return file ? (path / file).string() : path.string();
  }
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::string bytes = read_bytes(path);
  ASSERT_GT(bytes.size(), offset);
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x20);
  std::ofstream(path, std::ios::binary) << bytes;
}

/// Runs the full pipeline in `dir` (optionally cache-attached) and returns
/// the extracted patterns text.
std::string run_to_completion(const Netlist& nl, const std::string& dir,
                              const DeterrentConfig& cfg,
                              ArtifactCache* cache = nullptr) {
  Session session(dir, nl);
  if (cache != nullptr) session.attach_cache(cache);
  auto pipeline = session.resume_or_init(cfg);
  const StageStatus status = pipeline->run_remaining();
  EXPECT_EQ(status, StageStatus::Complete);
  session.save(*pipeline);
  return sim::write_patterns_string(pipeline->patterns());
}

// ------------------------------------------------ hit / miss / evict ------

TEST(ArtifactCacheUnit, HitMissEvictAndStatsAccounting) {
  const Netlist nl = make_circuit(301);
  const DeterrentConfig cfg = quick_config(31);

  TempDir work("unit_work");
  TempDir cache_dir("unit_cache");
  ArtifactCache cache(cache_dir.str());
  run_to_completion(nl, work.str(), cfg, &cache);

  // One entry per completed stage: lint, rare, compat, policy, patterns.
  const ArtifactCacheStats after_run = cache.stats();
  EXPECT_EQ(after_run.stores, 5u);
  EXPECT_EQ(after_run.entries, 5u);
  EXPECT_GT(after_run.bytes, 0u);
  EXPECT_EQ(after_run.evicted_corrupt, 0u);

  const std::uint64_t fp = netlist::structural_fingerprint(nl);
  const std::uint64_t ch = config_hash(cfg);

  // Hit: the fetched copy is byte-identical to the published entry.
  TempDir out("unit_out");
  ASSERT_TRUE(cache.fetch(fp, ch, ArtifactKind::RareNets, out.str("rare.art")));
  EXPECT_EQ(read_bytes(out.str("rare.art")),
            read_bytes(cache.entry_path(fp, ch, ArtifactKind::RareNets)));

  // Misses: unknown config hash, unknown fingerprint. (The run itself already
  // recorded hydration misses against the then-empty cache, so compare
  // relative to that baseline.)
  EXPECT_FALSE(cache.fetch(fp, ch ^ 1, ArtifactKind::RareNets, out.str("m1.art")));
  EXPECT_FALSE(cache.fetch(fp ^ 1, ch, ArtifactKind::RareNets, out.str("m2.art")));
  const ArtifactCacheStats after_fetch = cache.stats();
  EXPECT_EQ(after_fetch.hits, 1u);
  EXPECT_EQ(after_fetch.misses, after_run.misses + 2);

  // Fingerprint-scoped eviction removes exactly this netlist's entries; a
  // foreign fingerprint removes nothing.
  EXPECT_EQ(cache.evict_fingerprint(fp ^ 1), 0u);
  EXPECT_EQ(cache.evict_fingerprint(fp), 5u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.fetch(fp, ch, ArtifactKind::RareNets, out.str("m3.art")));

  // evict_all on an already-empty cache is a no-op.
  EXPECT_EQ(cache.evict_all(), 0u);
}

// --------------------------------------------- cross-session hydration ----

TEST(ArtifactCacheIntegration, SecondSessionHydratesToDoneWithZeroSatQueries) {
  DisarmGuard guard;
  const Netlist nl = make_circuit(302);
  const DeterrentConfig cfg = quick_config(32);

  TempDir cache_dir("hyd_cache");
  ArtifactCache cache(cache_dir.str());
  TempDir first("hyd_first");
  const std::string baseline = run_to_completion(nl, first.str(), cfg, &cache);

  // A fresh session directory for the same (netlist, config) must hydrate
  // every stage from the cache and have nothing left to run. Arming a
  // first-hit SAT fault proves the hydrated run issues zero SAT queries.
  util::faults::arm_from_string("seed=1;sat.query=throw@1");
  TempDir second("hyd_second");
  Session session(second.str(), nl);
  session.attach_cache(&cache);
  auto pipeline = session.resume_or_init(cfg);
  EXPECT_EQ(pipeline->next_stage(), Stage::Done);
  EXPECT_EQ(pipeline->run_remaining(), StageStatus::Complete);
  session.save(*pipeline);
  util::faults::disarm_all();

  EXPECT_EQ(sim::write_patterns_string(pipeline->patterns()), baseline);
  // Hydrated stage files are byte-identical to the first session's.
  for (const char* file : {Session::kRareFile, Session::kCompatFile,
                           Session::kPolicyFile, Session::kPatternFile}) {
    EXPECT_EQ(read_bytes(first.str(file)), read_bytes(second.str(file))) << file;
  }
  EXPECT_GE(cache.stats().hits, 5u);
}

// ---------------------------------------------- config-hash sensitivity ---

TEST(ArtifactCacheUnit, ConfigHashIsSensitiveToEverySerializedBlock) {
  const DeterrentConfig base = quick_config(33);
  const std::uint64_t base_hash = config_hash(base);
  EXPECT_EQ(base_hash, config_hash(quick_config(33)));  // deterministic

  // One representative knob per serialized config block (see write_config):
  // any of them changing must change the cache key.
  std::vector<DeterrentConfig> mutants;
  const auto mut = [&]() -> DeterrentConfig& {
    mutants.push_back(base);
    return mutants.back();
  };
  mut().lint.enabled = !base.lint.enabled;
  mut().lint.trigger_width = base.lint.trigger_width + 1;
  mut().lint.disabled.push_back("some-rule");
  mut().rare.threshold = base.rare.threshold + 0.01;
  mut().rare.sim_patterns = base.rare.sim_patterns + 1;
  mut().compat.sim_patterns = base.compat.sim_patterns + 1;
  mut().compat.sat_conflict_budget = base.compat.sat_conflict_budget + 1;
  mut().compat.portfolio_threads = base.compat.portfolio_threads + 2;
  mut().compat.shard_count = base.compat.shard_count + 3;
  mut().env.reward_mode = RewardMode::AllSteps;
  mut().env.max_steps = base.env.max_steps + 1;
  mut().env.sat_dispatch_threads = base.env.sat_dispatch_threads + 2;
  mut().ppo.entropy_coef = base.ppo.entropy_coef + 0.5f;
  mut().ppo.rollout_lanes = base.ppo.rollout_lanes + 1;
  mut().ppo.n_workers = base.ppo.n_workers + 1;
  mut().updates = base.updates + 1;
  mut().k_patterns = base.k_patterns + 1;
  mut().seed = base.seed + 1;
  mut().offline_threads = base.offline_threads + 1;

  for (std::size_t i = 0; i < mutants.size(); ++i)
    EXPECT_NE(config_hash(mutants[i]), base_hash) << "mutant " << i;
}

TEST(ArtifactCacheIntegration, ChangedConfigNeverHydrates) {
  const Netlist nl = make_circuit(303);
  const DeterrentConfig cfg = quick_config(34);

  TempDir cache_dir("cfg_cache");
  ArtifactCache cache(cache_dir.str());
  TempDir first("cfg_first");
  run_to_completion(nl, first.str(), cfg, &cache);

  // Same netlist, one changed knob: the key misses and nothing hydrates.
  DeterrentConfig other = cfg;
  other.seed = cfg.seed + 1;
  TempDir second("cfg_second");
  Session session(second.str(), nl);
  session.attach_cache(&cache);
  auto pipeline = session.resume_or_init(other);
  EXPECT_FALSE(session.has_rare_nets());
  EXPECT_FALSE(session.has_patterns());
  EXPECT_NE(pipeline->next_stage(), Stage::Done);
}

// ------------------------------------------- corruption quarantine --------

TEST(ArtifactCacheIntegration, CorruptEntryIsEvictedAndRegenerated) {
  const Netlist nl = make_circuit(304);
  const DeterrentConfig cfg = quick_config(35);

  TempDir cache_dir("corr_cache");
  ArtifactCache cache(cache_dir.str());
  TempDir first("corr_first");
  const std::string baseline = run_to_completion(nl, first.str(), cfg, &cache);

  // Silently flip one payload byte in the cached rare-nets entry. The next
  // fetch must detect it (CRC), evict the entry, and report a miss — never
  // serve the bytes.
  const std::uint64_t fp = netlist::structural_fingerprint(nl);
  const std::uint64_t ch = config_hash(cfg);
  const std::string entry = cache.entry_path(fp, ch, ArtifactKind::RareNets);
  ASSERT_TRUE(fs::exists(entry));
  flip_byte(entry, 40);

  TempDir second("corr_second");
  const std::string regenerated = run_to_completion(nl, second.str(), cfg, &cache);
  EXPECT_EQ(regenerated, baseline);
  EXPECT_GE(cache.stats().evicted_corrupt, 1u);

  // The regeneration re-published a valid entry in place of the corrupt one:
  // it loads cleanly and a third session hydrates straight to Done.
  ASSERT_TRUE(fs::exists(entry));
  EXPECT_NO_THROW((void)RareNetArtifact::load(entry, fp));
  TempDir third("corr_third");
  Session session(third.str(), nl);
  session.attach_cache(&cache);
  EXPECT_EQ(session.resume_or_init(cfg)->next_stage(), Stage::Done);
}

// --------------------------------- sharded compatibility bit-identity -----

struct CompatFixture {
  Netlist nl;
  std::vector<analysis::RareNet> rare;
  std::uint64_t fp = 0;
  std::uint64_t rare_hash = 0;
};

CompatFixture make_compat_fixture(std::uint64_t seed) {
  CompatFixture f{make_circuit(seed, 260), {}, 0, 0};
  util::Rng rng(seed * 5 + 3);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.15;
  rcfg.sim_patterns = 1 << 12;
  f.rare = analysis::find_rare_nets(f.nl, rcfg, rng);
  f.fp = netlist::structural_fingerprint(f.nl);
  f.rare_hash = rare_content_hash(f.fp, f.rare);
  return f;
}

/// Serializes a CompatibilityArtifact with build_seconds (the only
/// wall-clock-dependent field) normalized away, for byte comparison.
std::string compat_bytes(const CompatFixture& f,
                         const analysis::CompatibilityMatrix& matrix,
                         const std::vector<util::BitVec>& signatures,
                         analysis::CompatibilityBuildStats stats,
                         const std::string& path) {
  CompatibilityArtifact art;
  art.netlist_fingerprint = f.fp;
  art.rare_hash = f.rare_hash;
  art.matrix = matrix;
  art.witness_signatures = signatures;
  stats.build_seconds = 0.0;
  art.stats = stats;
  art.save(path);
  return read_bytes(path);
}

TEST(CompatShards, ShardedArtifactBitIdenticalToMonolithic) {
  const CompatFixture f = make_compat_fixture(305);
  if (f.rare.size() < 8) GTEST_SKIP();

  analysis::CompatibilityBuildConfig ccfg;
  ccfg.sim_patterns = 1 << 12;
  analysis::CompatibilityBuildStats mono_stats;
  std::vector<util::BitVec> mono_sigs;
  util::Rng mono_rng(77);
  const analysis::CompatibilityMatrix mono = analysis::build_compatibility(
      f.nl, f.rare, ccfg, mono_rng, nullptr, &mono_stats, &mono_sigs);

  TempDir out("shard_out");
  const std::string mono_bytes =
      compat_bytes(f, mono, mono_sigs, mono_stats, out.str("mono.art"));

  util::ThreadPool pool(3);
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    TempDir scratch("shard_scratch");
    analysis::CompatibilityBuildConfig scfg = ccfg;
    scfg.shard_count = shards;
    analysis::CompatibilityBuildStats stats;
    std::vector<util::BitVec> sigs;
    util::Rng rng(77);  // same stream as the monolithic build
    const analysis::CompatibilityMatrix matrix = build_sharded_compatibility(
        f.nl, f.rare, scfg, rng, &pool, &stats, &sigs, scratch.str(), f.fp,
        f.rare_hash);
    // Whole-artifact byte identity: matrix rows, witness signatures, and
    // every deterministic stats counter — not just the matrix bits.
    EXPECT_EQ(compat_bytes(f, matrix, sigs, stats, out.str("shard.art")),
              mono_bytes)
        << "shard_count=" << shards;
  }
}

TEST(CompatShards, KilledBuildResumesFromPersistedPartials) {
  DisarmGuard guard;
  const CompatFixture f = make_compat_fixture(306);
  if (f.rare.size() < 8) GTEST_SKIP();

  analysis::CompatibilityBuildConfig ccfg;
  ccfg.sim_patterns = 1 << 12;
  ccfg.shard_count = 4;
  util::ThreadPool pool(3);

  const auto build = [&](const std::string& scratch,
                         analysis::CompatibilityBuildStats* stats = nullptr) {
    util::Rng rng(78);
    return build_sharded_compatibility(f.nl, f.rare, ccfg, rng, &pool, stats,
                                       nullptr, scratch, f.fp, f.rare_hash);
  };

  TempDir scratch("kill_scratch");
  analysis::CompatibilityBuildStats ref_stats;
  const analysis::CompatibilityMatrix reference = build(scratch.str(), &ref_stats);

  // The scratch directory now holds the manifest plus all four partials. A
  // re-run over them must load every partial instead of recomputing: arming a
  // first-hit SAT fault proves zero pair queries happen.
  ASSERT_TRUE(fs::exists(fs::path(scratch.str()) / "manifest.art"));
  util::faults::arm_from_string("seed=1;sat.query=throw@1");
  {
    analysis::CompatibilityBuildStats resumed_stats;
    const analysis::CompatibilityMatrix resumed = build(scratch.str(), &resumed_stats);
    ASSERT_EQ(resumed.size(), reference.size());
    for (std::uint32_t i = 0; i < resumed.size(); ++i)
      EXPECT_EQ(resumed.row(i), reference.row(i)) << "row " << i;
    EXPECT_EQ(resumed_stats.pair_count, ref_stats.pair_count);
    EXPECT_EQ(resumed_stats.sat_sat, ref_stats.sat_sat);
    EXPECT_EQ(resumed_stats.sat_unsat, ref_stats.sat_unsat);
    EXPECT_EQ(resumed_stats.unsat_singletons, ref_stats.unsat_singletons);
  }
  util::faults::disarm_all();

  // Kill-mid-merge shape: one partial deleted, one silently bit-flipped. The
  // resume must drop the corrupt partial (quarantine, not trust) and rebuild
  // exactly the two missing shards — bit-identical to the clean build.
  std::vector<fs::path> partials;
  for (const auto& entry : fs::directory_iterator(scratch.path)) {
    if (entry.path().filename().string().rfind("shard_", 0) == 0)
      partials.push_back(entry.path());
  }
  ASSERT_GE(partials.size(), 2u);
  fs::remove(partials[0]);
  flip_byte(partials[1].string(), 48);
  {
    const analysis::CompatibilityMatrix healed = build(scratch.str());
    ASSERT_EQ(healed.size(), reference.size());
    for (std::uint32_t i = 0; i < healed.size(); ++i)
      EXPECT_EQ(healed.row(i), reference.row(i)) << "row " << i;
  }

  // Genuine kill: fresh scratch, fault the first SAT pair query so the build
  // dies mid-flight, then resume disarmed — still bit-identical. (Skipped if
  // this fixture resolves every pair in simulation: no SAT ⇒ nothing to kill.)
  if (ref_stats.sat_sat + ref_stats.sat_unsat + ref_stats.timeout_pairs > 0) {
    TempDir scratch2("kill_scratch2");
    util::faults::arm_from_string("seed=1;sat.query=throw@1");
    EXPECT_THROW(build(scratch2.str()), FaultInjectedError);
    util::faults::disarm_all();
    const analysis::CompatibilityMatrix recovered = build(scratch2.str());
    ASSERT_EQ(recovered.size(), reference.size());
    for (std::uint32_t i = 0; i < recovered.size(); ++i)
      EXPECT_EQ(recovered.row(i), reference.row(i)) << "row " << i;
  }
}

}  // namespace
}  // namespace deterrent::core

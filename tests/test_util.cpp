#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "util/bitvec.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace deterrent::util {
namespace {

// ---------------------------------------------------------------- Rng ------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_word(), b.next_word());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_word() == b.next_word()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(23);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = rng.sample_indices(20, 8);
    ASSERT_EQ(idx.size(), 8u);
    std::set<std::uint32_t> s(idx.begin(), idx.end());
    EXPECT_EQ(s.size(), 8u);
    for (const auto i : s) EXPECT_LT(i, 20u);
  }
}

TEST(Rng, SampleIndicesFullRange) {
  Rng rng(29);
  auto idx = rng.sample_indices(5, 5);
  std::set<std::uint32_t> s(idx.begin(), idx.end());
  EXPECT_EQ(s.size(), 5u);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(31);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_word() == b.next_word()) ++same;
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------- BitVec ------

TEST(BitVec, StartsEmpty) {
  BitVec bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.count(), 0u);
  EXPECT_TRUE(bv.none());
  EXPECT_FALSE(bv.any());
}

TEST(BitVec, SetAndTest) {
  BitVec bv(130);
  bv.set(0);
  bv.set(64);
  bv.set(129);
  EXPECT_TRUE(bv.test(0));
  EXPECT_TRUE(bv.test(64));
  EXPECT_TRUE(bv.test(129));
  EXPECT_FALSE(bv.test(1));
  EXPECT_EQ(bv.count(), 3u);
  bv.reset(64);
  EXPECT_FALSE(bv.test(64));
  EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVec, SetAllRespectsSize) {
  for (std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    BitVec bv(n);
    bv.set_all();
    EXPECT_EQ(bv.count(), n) << "n=" << n;
  }
}

TEST(BitVec, FindFirstNext) {
  BitVec bv(200);
  bv.set(5);
  bv.set(63);
  bv.set(64);
  bv.set(199);
  EXPECT_EQ(bv.find_first(), 5u);
  EXPECT_EQ(bv.find_next(6), 63u);
  EXPECT_EQ(bv.find_next(64), 64u);
  EXPECT_EQ(bv.find_next(65), 199u);
  EXPECT_EQ(bv.find_next(200), 200u);  // off the end
}

TEST(BitVec, ToIndicesRoundTrip) {
  Rng rng(37);
  BitVec bv(300);
  std::set<std::uint32_t> expected;
  for (int i = 0; i < 40; ++i) {
    const auto idx = static_cast<std::uint32_t>(rng.below(300));
    bv.set(idx);
    expected.insert(idx);
  }
  const auto got = bv.to_indices();
  EXPECT_EQ(std::set<std::uint32_t>(got.begin(), got.end()), expected);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(BitVec, SubsetAndIntersect) {
  BitVec a(100);
  BitVec b(100);
  a.set(3);
  a.set(50);
  b.set(3);
  b.set(50);
  b.set(99);
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  BitVec c(100);
  c.set(42);
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(c.is_subset_of(c));
}

TEST(BitVec, BitwiseOps) {
  BitVec a(70);
  BitVec b(70);
  a.set(1);
  a.set(69);
  b.set(69);
  b.set(2);
  const BitVec andv = a & b;
  EXPECT_EQ(andv.count(), 1u);
  EXPECT_TRUE(andv.test(69));
  const BitVec orv = a | b;
  EXPECT_EQ(orv.count(), 3u);
  const BitVec xorv = a ^ b;
  EXPECT_EQ(xorv.count(), 2u);
  EXPECT_FALSE(xorv.test(69));
}

TEST(BitVec, EqualityAndHash) {
  BitVec a(100);
  BitVec b(100);
  a.set(10);
  b.set(10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(11);
  EXPECT_NE(a, b);
}

TEST(BitVec, HashDistinguishesSizes) {
  BitVec a(64);
  BitVec b(65);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(BitVec, ToString) {
  BitVec bv(5);
  bv.set(0);
  bv.set(3);
  EXPECT_EQ(bv.to_string(), "10010");
}

// --------------------------------------------------------- ThreadPool ------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelChunksPartition) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_chunks(997, [&](std::size_t, std::size_t b, std::size_t e) {
    total += e - b;
  });
  EXPECT_EQ(total.load(), 997u);
}

TEST(ThreadPool, WaitIdleAllowsReuse) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 100);
}

// -------------------------------------------------------------- Table ------

TEST(Table, AlignsColumns) {
  Table t({"Design", "Cov"});
  t.add_row({"c2670", "100"});
  t.add_row({"mips16_like", "97"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Design      | Cov"), std::string::npos);
  EXPECT_NE(s.find("c2670       | 100"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(169.677, 1), "169.7");
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
}

// ---------------------------------------------------------------- env ------

TEST(EnvConfig, BenchModeDefault) {
  // Without the env var set, mode falls back to Default.
  unsetenv("DETERRENT_BENCH_MODE");
  EXPECT_EQ(bench_mode_from_env(), BenchMode::Default);
  setenv("DETERRENT_BENCH_MODE", "quick", 1);
  EXPECT_EQ(bench_mode_from_env(), BenchMode::Quick);
  setenv("DETERRENT_BENCH_MODE", "full", 1);
  EXPECT_EQ(bench_mode_from_env(), BenchMode::Full);
  setenv("DETERRENT_BENCH_MODE", "garbage", 1);
  EXPECT_EQ(bench_mode_from_env(), BenchMode::Default);
  unsetenv("DETERRENT_BENCH_MODE");
}

TEST(EnvConfig, EnvLongParsesAndFallsBack) {
  setenv("DETERRENT_TEST_LONG", "42", 1);
  EXPECT_EQ(env_long("DETERRENT_TEST_LONG", 7), 42);
  setenv("DETERRENT_TEST_LONG", "not_a_number", 1);
  EXPECT_EQ(env_long("DETERRENT_TEST_LONG", 7), 7);
  unsetenv("DETERRENT_TEST_LONG");
  EXPECT_EQ(env_long("DETERRENT_TEST_LONG", 9), 9);
}

}  // namespace
}  // namespace deterrent::util

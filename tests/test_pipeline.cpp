// Staged-pipeline tests: artifact round trips, corruption handling,
// checkpoint/resume bit-identity against uninterrupted runs, stage control
// (cancellation + budgets), session persistence, and the multi-circuit
// campaign driver.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_gen/library.hpp"
#include "bench_gen/random_circuit.hpp"
#include "core/campaign.hpp"
#include "core/deterrent.hpp"
#include "core/session.hpp"
#include "netlist/stats.hpp"
#include "sim/pattern_io.hpp"

namespace deterrent::core {
namespace {

namespace fs = std::filesystem;

using netlist::Netlist;

Netlist make_circuit(std::uint64_t seed, std::size_t gates = 220) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 16;
  p.n_outputs = 8;
  p.n_gates = gates;
  p.seed = seed;
  return bench_gen::generate_random_circuit(p);
}

DeterrentConfig quick_config(std::uint64_t seed = 11) {
  DeterrentConfig cfg;
  cfg.rare.threshold = 0.15;
  cfg.rare.sim_patterns = 1 << 12;
  cfg.compat.sim_patterns = 1 << 12;
  cfg.env.reward_mode = RewardMode::EndOfEpisode;
  cfg.updates = 3;
  cfg.k_patterns = 8;
  cfg.seed = seed;
  cfg.ppo.episodes_per_update = 6;
  cfg.offline_threads = 2;
  return cfg;
}

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("deterrent_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string str(const char* file = nullptr) const {
    return file ? (path / file).string() : path.string();
  }
};

std::string patterns_text(const sim::PatternSet& patterns) {
  return sim::write_patterns_string(patterns);
}

// ------------------------------------------------------- round trips -------

TEST(Artifacts, RareNetRoundTrip) {
  const Netlist nl = make_circuit(31);
  Pipeline pipeline(nl, quick_config());
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);

  TempDir dir("rare_rt");
  const auto exported = pipeline.export_rare_nets();
  exported.save(dir.str("rare.art"));
  const auto loaded =
      RareNetArtifact::load(dir.str("rare.art"), pipeline.netlist_fingerprint());

  EXPECT_EQ(loaded.netlist_fingerprint, pipeline.netlist_fingerprint());
  EXPECT_EQ(loaded.rare_nets, exported.rare_nets);
  EXPECT_EQ(loaded.rng_state_after, exported.rng_state_after);
  EXPECT_EQ(loaded.rare_hash(), exported.rare_hash());
  EXPECT_DOUBLE_EQ(loaded.threshold, exported.threshold);
}

TEST(Artifacts, CompatibilityRoundTrip) {
  const Netlist nl = make_circuit(32);
  Pipeline pipeline(nl, quick_config());
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);
  ASSERT_EQ(pipeline.run_compatibility(), StageStatus::Complete);

  TempDir dir("compat_rt");
  const auto exported = pipeline.export_compatibility();
  exported.save(dir.str("compat.art"));
  const auto loaded = CompatibilityArtifact::load(dir.str("compat.art"));

  ASSERT_EQ(loaded.matrix.size(), exported.matrix.size());
  for (std::uint32_t i = 0; i < exported.matrix.size(); ++i)
    EXPECT_EQ(loaded.matrix.row(i), exported.matrix.row(i)) << "row " << i;
  EXPECT_EQ(loaded.witness_signatures, exported.witness_signatures);
  EXPECT_EQ(loaded.stats.pair_count, exported.stats.pair_count);
  EXPECT_EQ(loaded.stats.sim_resolved, exported.stats.sim_resolved);
  EXPECT_EQ(loaded.stats.sat_sat, exported.stats.sat_sat);
  EXPECT_EQ(loaded.rare_hash, exported.rare_hash);
}

TEST(Artifacts, PolicyRoundTrip) {
  const Netlist nl = make_circuit(33);
  Pipeline pipeline(nl, quick_config());
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);
  ASSERT_EQ(pipeline.run_compatibility(), StageStatus::Complete);
  ASSERT_EQ(pipeline.run_train(2), StageStatus::Complete);

  TempDir dir("policy_rt");
  const auto exported = pipeline.export_policy();
  exported.save(dir.str("policy.art"));
  const auto loaded = PolicyArtifact::load(dir.str("policy.art"));

  EXPECT_EQ(loaded.trainer.policy_params, exported.trainer.policy_params);
  EXPECT_EQ(loaded.trainer.value_params, exported.trainer.value_params);
  EXPECT_EQ(loaded.trainer.policy_opt.m, exported.trainer.policy_opt.m);
  EXPECT_EQ(loaded.trainer.policy_opt.v, exported.trainer.policy_opt.v);
  EXPECT_EQ(loaded.trainer.policy_opt.t, exported.trainer.policy_opt.t);
  EXPECT_EQ(loaded.trainer.rng_states, exported.trainer.rng_states);
  EXPECT_EQ(loaded.trainer.total_steps, exported.trainer.total_steps);
  ASSERT_EQ(loaded.history.size(), exported.history.size());
  for (std::size_t i = 0; i < exported.history.size(); ++i) {
    EXPECT_EQ(loaded.history[i].pool_size, exported.history[i].pool_size);
    EXPECT_EQ(loaded.history[i].sat_queries, exported.history[i].sat_queries);
    EXPECT_DOUBLE_EQ(loaded.history[i].ppo.total_loss, exported.history[i].ppo.total_loss);
  }
  // Pool contents are unordered; compare as sorted set lists.
  auto sort_sets = [](std::vector<util::BitVec> sets) {
    std::sort(sets.begin(), sets.end(), [](const util::BitVec& a, const util::BitVec& b) {
      return a.to_indices() < b.to_indices();
    });
    return sets;
  };
  EXPECT_EQ(sort_sets(loaded.pool_sets), sort_sets(exported.pool_sets));
}

TEST(Artifacts, PatternRoundTrip) {
  const Netlist nl = make_circuit(34);
  Pipeline pipeline(nl, quick_config());
  ASSERT_EQ(pipeline.run_remaining(), StageStatus::Complete);

  TempDir dir("pattern_rt");
  const auto exported = pipeline.export_patterns();
  exported.save(dir.str("patterns.art"));
  const auto loaded = PatternArtifact::load(dir.str("patterns.art"));

  EXPECT_EQ(patterns_text(loaded.patterns), patterns_text(exported.patterns));
  EXPECT_EQ(loaded.extracted_sets, exported.extracted_sets);
}

// --------------------------------------------------- corrupt artifacts -----

TEST(Artifacts, CorruptPayloadFailsLoudly) {
  const Netlist nl = make_circuit(35);
  Pipeline pipeline(nl, quick_config());
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);

  TempDir dir("corrupt");
  const std::string path = dir.str("rare.art");
  pipeline.export_rare_nets().save(path);

  // Flip one payload byte: the CRC must catch it.
  auto bytes = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  ASSERT_GT(bytes.size(), 40u);
  bytes[40] = static_cast<char>(bytes[40] ^ 0x10);
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_THROW(RareNetArtifact::load(path), Error);
}

TEST(Artifacts, TruncatedFileFailsLoudly) {
  const Netlist nl = make_circuit(35);
  Pipeline pipeline(nl, quick_config());
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);

  TempDir dir("truncated");
  const std::string path = dir.str("rare.art");
  pipeline.export_rare_nets().save(path);
  fs::resize_file(path, fs::file_size(path) - 5);
  EXPECT_THROW(RareNetArtifact::load(path), Error);
}

TEST(Artifacts, WrongKindAndFingerprintFailLoudly) {
  const Netlist nl = make_circuit(35);
  const Netlist other = make_circuit(36);
  Pipeline pipeline(nl, quick_config());
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);

  TempDir dir("mismatch");
  const std::string path = dir.str("rare.art");
  pipeline.export_rare_nets().save(path);

  // Loading a rare-net file as a pattern artifact must be rejected by kind.
  EXPECT_THROW(PatternArtifact::load(path), Error);
  // Loading against a different circuit must be rejected by fingerprint.
  EXPECT_THROW(RareNetArtifact::load(path, netlist::structural_fingerprint(other)),
               Error);
  EXPECT_NE(netlist::structural_fingerprint(nl), netlist::structural_fingerprint(other));
}

TEST(Artifacts, CrossRunMixingFailsLoudly) {
  // A compatibility artifact built from one rare-net set must not adopt into
  // a pipeline holding different rare nets (same circuit, different seed ⇒
  // different simulation draws can shift the rare list / rng chain).
  const Netlist nl = make_circuit(37);
  Pipeline a(nl, quick_config(1));
  Pipeline b(nl, quick_config(2));
  ASSERT_EQ(a.run_rare_nets(), StageStatus::Complete);
  ASSERT_EQ(a.run_compatibility(), StageStatus::Complete);
  ASSERT_EQ(b.run_rare_nets(), StageStatus::Complete);

  auto compat = a.export_compatibility();
  if (rare_content_hash(b.netlist_fingerprint(), b.rare_nets()) != compat.rare_hash) {
    EXPECT_THROW(b.adopt(std::move(compat)), Error);
  } else {
    GTEST_SKIP() << "seeds produced identical rare-net sets";
  }
}

// ------------------------------------------------- resume bit-identity -----

TEST(Pipeline, StagedRunMatchesMonolithicRun) {
  const Netlist nl = make_circuit(40);
  const DeterrentConfig cfg = quick_config(5);

  // Uninterrupted facade run.
  Deterrent straight(nl, cfg);
  const auto straight_patterns = straight.run();

  // Staged run: a fresh Pipeline per stage, round-tripping every artifact
  // through disk — the strongest simulation of kill + new-process resume.
  TempDir dir("staged");
  {
    Session session(dir.str(), nl);
    auto p = session.resume_with(cfg);
    ASSERT_EQ(p->run_rare_nets(), StageStatus::Complete);
    session.save(*p);
  }
  {
    Session session(dir.str(), nl);
    auto p = session.resume();
    EXPECT_EQ(p->next_stage(), Stage::Compatibility);
    ASSERT_EQ(p->run_compatibility(), StageStatus::Complete);
    session.save(*p);
  }
  {
    Session session(dir.str(), nl);
    auto p = session.resume();
    EXPECT_EQ(p->next_stage(), Stage::Train);
    ASSERT_EQ(p->run_train(), StageStatus::Complete);
    session.save(*p);
  }
  Session session(dir.str(), nl);
  auto p = session.resume();
  EXPECT_EQ(p->next_stage(), Stage::Extract);
  ASSERT_EQ(p->run_extract(), StageStatus::Complete);
  session.save(*p);
  EXPECT_EQ(p->next_stage(), Stage::Done);

  EXPECT_GT(straight_patterns.pattern_count(), 0u);
  EXPECT_EQ(patterns_text(p->patterns()), patterns_text(straight_patterns));
  EXPECT_EQ(p->extracted_sets(), straight.extracted_sets());
  EXPECT_EQ(p->pool().size(), straight.pool().size());
}

TEST(Pipeline, MidTrainingCheckpointResumesBitIdentically) {
  const Netlist nl = make_circuit(41);
  DeterrentConfig cfg = quick_config(6);
  cfg.updates = 5;

  Deterrent straight(nl, cfg);
  const auto straight_patterns = straight.run();

  TempDir dir("midtrain");
  {
    Session session(dir.str(), nl);
    auto p = session.resume_with(cfg);
    ASSERT_EQ(p->run_rare_nets(), StageStatus::Complete);
    ASSERT_EQ(p->run_compatibility(), StageStatus::Complete);
    ASSERT_EQ(p->run_train(2), StageStatus::Complete);  // interrupted at 2/5
    session.save(*p);
  }
  Session session(dir.str(), nl);
  auto p = session.resume();
  EXPECT_EQ(p->history().size(), 2u);
  EXPECT_EQ(p->next_stage(), Stage::Train);
  ASSERT_EQ(p->run_remaining(), StageStatus::Complete);  // 3 more + extract

  EXPECT_EQ(p->history().size(), 5u);
  EXPECT_EQ(patterns_text(p->patterns()), patterns_text(straight_patterns));
  // The training trajectory itself must also be identical.
  const auto& h_resumed = p->history();
  const auto& h_straight = straight.history();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h_resumed[i].cumulative_steps, h_straight[i].cumulative_steps) << i;
    EXPECT_EQ(h_resumed[i].pool_size, h_straight[i].pool_size) << i;
    EXPECT_DOUBLE_EQ(h_resumed[i].ppo.total_loss, h_straight[i].ppo.total_loss) << i;
  }
}

TEST(Pipeline, MidTrainingCheckpointWithRolloutLanesResumesBitIdentically) {
  // Same kill-and-resume drill as above, but with the vectorized collector
  // (rollout_lanes > 1): the checkpoint is taken between batched updates and
  // must restore every lane RNG stream. Also pins the pipeline-level half of
  // the determinism contract — rollout_lanes = N and n_workers = N runs must
  // emit identical patterns end to end.
  const Netlist nl = make_circuit(44);
  DeterrentConfig lanes_cfg = quick_config(8);
  lanes_cfg.updates = 5;
  lanes_cfg.ppo.rollout_lanes = 4;

  DeterrentConfig workers_cfg = lanes_cfg;
  workers_cfg.ppo.rollout_lanes = 1;
  workers_cfg.ppo.n_workers = 4;

  Deterrent straight_lanes(nl, lanes_cfg);
  const auto lanes_patterns = straight_lanes.run();
  Deterrent straight_workers(nl, workers_cfg);
  const auto workers_patterns = straight_workers.run();
  EXPECT_EQ(patterns_text(lanes_patterns), patterns_text(workers_patterns))
      << "vectorized lanes and threaded workers diverged end to end";

  TempDir dir("midtrain_lanes");
  {
    Session session(dir.str(), nl);
    auto p = session.resume_with(lanes_cfg);
    ASSERT_EQ(p->run_rare_nets(), StageStatus::Complete);
    ASSERT_EQ(p->run_compatibility(), StageStatus::Complete);
    ASSERT_EQ(p->run_train(2), StageStatus::Complete);  // interrupted at 2/5
    session.save(*p);
  }
  Session session(dir.str(), nl);
  auto p = session.resume();
  EXPECT_EQ(p->history().size(), 2u);
  ASSERT_EQ(p->run_remaining(), StageStatus::Complete);

  EXPECT_EQ(p->history().size(), 5u);
  EXPECT_EQ(patterns_text(p->patterns()), patterns_text(lanes_patterns));
  const auto& h_resumed = p->history();
  const auto& h_straight = straight_lanes.history();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(h_resumed[i].cumulative_steps, h_straight[i].cumulative_steps) << i;
    EXPECT_EQ(h_resumed[i].pool_size, h_straight[i].pool_size) << i;
    EXPECT_DOUBLE_EQ(h_resumed[i].ppo.total_loss, h_straight[i].ppo.total_loss) << i;
  }
}

// -------------------------------------------------------- stage control ----

TEST(Pipeline, TrainZeroUpdatesEdgeRunsOneUpdate) {
  // Historically train(0) with config.updates == 0 silently ran nothing;
  // the defined behavior is "use the config default, minimum one update".
  const Netlist nl = make_circuit(42);
  DeterrentConfig cfg = quick_config(7);
  cfg.updates = 0;
  Deterrent det(nl, cfg);
  det.prepare();
  det.train(0);
  EXPECT_EQ(det.history().size(), 1u);
  EXPECT_EQ(det.pipeline().effective_updates(), 1u);
}

TEST(Pipeline, CancellationStopsAtUpdateBoundary) {
  const Netlist nl = make_circuit(43);
  Pipeline pipeline(nl, quick_config(8));
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);
  ASSERT_EQ(pipeline.run_compatibility(), StageStatus::Complete);

  StageControl control;
  std::size_t events = 0;
  control.on_progress = [&](const StageProgress& p) {
    EXPECT_EQ(p.stage, Stage::Train);
    ++events;
    return p.current < 1;  // cancel once one update completed
  };
  EXPECT_EQ(pipeline.run_train(10, control), StageStatus::Cancelled);
  EXPECT_EQ(pipeline.history().size(), 1u);
  EXPECT_GE(events, 2u);

  // The cancelled pipeline remains consistent and can continue training.
  EXPECT_EQ(pipeline.run_train(1), StageStatus::Complete);
  EXPECT_EQ(pipeline.history().size(), 2u);
}

TEST(Pipeline, SatQueryBudgetStopsTraining) {
  const Netlist nl = make_circuit(44);
  DeterrentConfig cfg = quick_config(9);
  // Disable the witness shortcut so training issues real SAT queries.
  cfg.compat.sim_patterns = 0;
  Pipeline pipeline(nl, cfg);
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);
  ASSERT_EQ(pipeline.run_compatibility(), StageStatus::Complete);

  StageControl control;
  control.sat_query_budget = 1;
  EXPECT_EQ(pipeline.run_train(50, control), StageStatus::BudgetExhausted);
  EXPECT_LT(pipeline.history().size(), 50u);
  EXPECT_GE(pipeline.train_sat_queries(), 1u);
}

TEST(Pipeline, WallBudgetStopsTraining) {
  const Netlist nl = make_circuit(45);
  Pipeline pipeline(nl, quick_config(10));
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);
  ASSERT_EQ(pipeline.run_compatibility(), StageStatus::Complete);

  StageControl control;
  control.wall_budget_seconds = 1e-9;  // trips at the first checkpoint
  EXPECT_EQ(pipeline.run_train(50, control), StageStatus::BudgetExhausted);
  EXPECT_LT(pipeline.history().size(), 50u);
}

TEST(Pipeline, StageOrderIsEnforced) {
  const Netlist nl = make_circuit(46);
  Pipeline pipeline(nl, quick_config(11));
  EXPECT_THROW(pipeline.run_compatibility(), Error);
  EXPECT_THROW(pipeline.run_train(1), Error);
  EXPECT_THROW(pipeline.run_extract(), Error);
  EXPECT_THROW(pipeline.export_rare_nets(), Error);

  // Extraction with nothing trained (empty pool) must fail loudly instead of
  // producing an empty pattern artifact that resume would then trust.
  ASSERT_EQ(pipeline.run_rare_nets(), StageStatus::Complete);
  ASSERT_EQ(pipeline.run_compatibility(), StageStatus::Complete);
  EXPECT_THROW(pipeline.run_extract(), Error);
}

TEST(Pipeline, TrainingAfterExtractionInvalidatesPatterns) {
  const Netlist nl = make_circuit(47);
  Pipeline pipeline(nl, quick_config(12));
  ASSERT_EQ(pipeline.run_remaining(), StageStatus::Complete);
  ASSERT_TRUE(pipeline.extract_done());
  const std::string first = patterns_text(pipeline.patterns());

  // More training grows the pool, so the old extraction is stale: the
  // pipeline must re-run Extract rather than skip to Done.
  ASSERT_EQ(pipeline.run_train(2), StageStatus::Complete);
  EXPECT_FALSE(pipeline.extract_done());
  EXPECT_THROW(pipeline.export_patterns(), Error);
  EXPECT_EQ(pipeline.next_stage(), Stage::Extract);
  ASSERT_EQ(pipeline.run_remaining(), StageStatus::Complete);
  EXPECT_TRUE(pipeline.extract_done());
  EXPECT_GT(pipeline.patterns().pattern_count(), 0u);
  (void)first;  // contents may or may not change; only the staleness contract matters
}

TEST(Session, TrainingPastAnExtractionDropsTheStalePatternArtifact) {
  // Complete run saved, then more training: the session must not keep the
  // outdated patterns.art, or the next resume would report Done and emit
  // patterns from the smaller pool.
  const Netlist nl = make_circuit(48);
  DeterrentConfig cfg = quick_config(13);
  cfg.updates = 4;

  TempDir dir("stale_patterns");
  Session session(dir.str(), nl);
  {
    auto p = session.resume_with(cfg);
    // Interrupted at 2/4 updates, but patterns already extracted once.
    ASSERT_EQ(p->run_rare_nets(), StageStatus::Complete);
    ASSERT_EQ(p->run_compatibility(), StageStatus::Complete);
    ASSERT_EQ(p->run_train(2), StageStatus::Complete);
    ASSERT_EQ(p->run_extract(), StageStatus::Complete);
    session.save(*p);
    ASSERT_TRUE(session.has_patterns());
    ASSERT_EQ(p->run_train(1), StageStatus::Complete);  // extraction now stale
    session.save(*p);
    EXPECT_FALSE(session.has_patterns());
  }
  auto p = session.resume();
  EXPECT_EQ(p->history().size(), 3u);
  EXPECT_EQ(p->next_stage(), Stage::Train);
  ASSERT_EQ(p->run_remaining(), StageStatus::Complete);

  // And the final result still matches an uninterrupted run.
  Deterrent straight(nl, cfg);
  EXPECT_EQ(patterns_text(p->patterns()), patterns_text(straight.run()));
}

TEST(Serialize, ForgedLengthPrefixesThrowInsteadOfAllocating) {
  // A CRC-valid payload whose element counts exceed the bytes present must
  // throw Error (the loud-failure contract), not bad_alloc/length_error.
  {
    util::BinaryWriter w;
    w.u64(std::uint64_t{1} << 40);  // bitvec claiming 2^40 bits, no words
    util::BinaryReader r(w.bytes());
    EXPECT_THROW(r.bitvec(), Error);
  }
  {
    util::BinaryWriter w;
    w.u64(std::uint64_t{1} << 62);  // f32 count whose byte size wraps 2^64
    util::BinaryReader r(w.bytes());
    EXPECT_THROW(r.f32_vec(), Error);
  }
  {
    util::BinaryWriter w;
    w.u64(~std::uint64_t{0});  // string length near 2^64: pos + n overflows
    util::BinaryReader r(w.bytes());
    EXPECT_THROW(r.str(), Error);
  }
  {
    // A bare envelope whose payload_size field is forged to ~2^64 so that
    // `payload_size + 4` wraps: the loader must throw Error, not build a
    // vector from an inverted iterator range.
    TempDir dir("forged_env");
    util::BinaryWriter w;
    for (const char m : {'D', 'E', 'T', 'A'}) w.u8(static_cast<std::uint8_t>(m));
    w.u32(static_cast<std::uint32_t>(ArtifactKind::RareNets));
    w.u32(kArtifactFormatVersion);
    w.u64(123);                          // fingerprint
    w.u64(~std::uint64_t{0} - 3);        // payload_size = 2^64 - 4
    std::ofstream out(dir.str("forged.art"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.bytes().size()));
    out.close();
    EXPECT_THROW(RareNetArtifact::load(dir.str("forged.art")), Error);
  }
}

// ------------------------------------------------------------ campaign -----

TEST(Campaign, RunsLibraryCircuitsConcurrentlyAndAggregates) {
  const auto b1 = bench_gen::load_benchmark("c2670_like");
  const auto b2 = bench_gen::load_benchmark("c6288_like");
  const auto b3 = bench_gen::load_benchmark("c5315_like");

  TempDir dir("campaign");
  CampaignConfig cfg;
  cfg.base = quick_config(3);
  cfg.base.rare.threshold = 0.1;
  cfg.base.rare.sim_patterns = 1 << 14;
  cfg.base.compat.sim_patterns = 1 << 13;
  cfg.base.updates = 2;
  cfg.base.offline_threads = 1;
  cfg.threads = 3;
  cfg.session_root = dir.str();

  Campaign campaign(cfg);
  campaign.add(b1.name, b1.scan.comb);
  campaign.add(b2.name, b2.scan.comb);
  campaign.add(b3.name, b3.scan.comb);

  const auto report = campaign.run();
  ASSERT_EQ(report.circuits.size(), 3u);
  EXPECT_EQ(report.completed, 3u);
  for (const auto& row : report.circuits) {
    EXPECT_TRUE(row.ok) << row.name << ": " << row.error;
    EXPECT_GT(row.rare_nets, 0u) << row.name;
    EXPECT_GT(row.patterns, 0u) << row.name;
  }
  EXPECT_EQ(report.total_patterns,
            report.circuits[0].patterns + report.circuits[1].patterns +
                report.circuits[2].patterns);
  const std::string table = report.to_table();
  EXPECT_NE(table.find("c2670_like"), std::string::npos);
  EXPECT_NE(table.find("3/3"), std::string::npos);

  // Re-running resumes every circuit from its session artifacts: identical
  // pattern counts, no retraining (pool/SAT stats come from the artifacts).
  Campaign again(cfg);
  again.add(b1.name, b1.scan.comb);
  again.add(b2.name, b2.scan.comb);
  again.add(b3.name, b3.scan.comb);
  const auto resumed = again.run();
  EXPECT_EQ(resumed.completed, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(resumed.circuits[i].patterns, report.circuits[i].patterns);
    EXPECT_EQ(resumed.circuits[i].sat_queries, report.circuits[i].sat_queries);
  }
}

TEST(Campaign, SequentialWorkloadStageReportsMultiTraceThroughput) {
  // Enrolling the original sequential design next to its scan view and
  // setting workload_cycles runs the multi-trace SequentialEngine workload
  // after the pipeline and fills the workload_* report fields. The second
  // circuit has no workload netlist, so its fields stay at their defaults.
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 12;
  p.n_outputs = 6;
  p.n_gates = 180;
  p.n_dffs = 10;
  p.seed = 53;
  const Netlist original = bench_gen::generate_random_circuit(p);
  const netlist::ScanView scan = netlist::make_full_scan(original);
  const Netlist comb_only = make_circuit(52);

  CampaignConfig cfg;
  cfg.base = quick_config(6);
  cfg.threads = 1;
  cfg.workload_cycles = 64;
  cfg.workload_traces = 96;  // 2 words, ragged

  Campaign campaign(cfg);
  campaign.add("seq_like", scan.comb, original);
  campaign.add("comb_only", comb_only);
  const auto report = campaign.run();
  ASSERT_EQ(report.circuits.size(), 2u);

  const auto& with = report.circuits[0];
  EXPECT_TRUE(with.ok) << with.error;
  EXPECT_EQ(with.workload_cycles, 64u);
  EXPECT_EQ(with.workload_traces, 96u);
  EXPECT_GT(with.workload_trace_cycles_per_sec, 0.0);
  EXPECT_GT(with.workload_gate_evals_per_cycle, 0.0);
  // Chaotic state dynamics may pay the dense fallback (one full sweep) on
  // some cycles, but never more — the activity statistic is bounded by the
  // program size. The sparse steady-state case is pinned by the MIPS16
  // workload in test_sequential_engine.cpp and the micro_sim bench.
  EXPECT_LE(with.workload_gate_evals_per_cycle,
            static_cast<double>(scan.comb.gate_count()));

  const auto& without = report.circuits[1];
  EXPECT_TRUE(without.ok) << without.error;
  EXPECT_EQ(without.workload_cycles, 0u);
  EXPECT_EQ(without.workload_gate_evals_per_cycle, -1.0);
}

TEST(Campaign, SharedCancellationStopsAllCircuits) {
  const Netlist n1 = make_circuit(50);
  const Netlist n2 = make_circuit(51);
  CampaignConfig cfg;
  cfg.base = quick_config(4);
  cfg.base.updates = 50;  // far more than the cancel point allows
  cfg.threads = 2;
  Campaign campaign(cfg);
  campaign.add("a", n1);
  campaign.add("b", n2);

  StageControl control;
  std::atomic<int> train_events{0};
  control.on_progress = [&](const StageProgress& p) {
    if (p.stage == Stage::Train) return ++train_events <= 2;
    return true;
  };
  const auto report = campaign.run(control);
  std::size_t cancelled = 0;
  for (const auto& row : report.circuits) {
    EXPECT_TRUE(row.ok) << row.error;
    if (row.status == StageStatus::Cancelled) ++cancelled;
  }
  EXPECT_GE(cancelled, 1u);
  EXPECT_LT(report.completed, 2u);
}

}  // namespace
}  // namespace deterrent::core

// End-to-end integration tests: the full DETERRENT pipeline against the
// baselines on generated benchmarks, asserting the paper's *qualitative*
// claims at smoke scale (the bench/ harnesses reproduce the quantitative
// tables and figures).
#include <gtest/gtest.h>

#include "baselines/atpg_like.hpp"
#include "baselines/tarmac.hpp"
#include "bench_gen/library.hpp"
#include "core/deterrent.hpp"
#include "trojan/coverage.hpp"
#include "trojan/trojan.hpp"

namespace deterrent {
namespace {

struct Campaign {
  bench_gen::Benchmark bench;
  core::Deterrent det;
  std::vector<trojan::Trojan> trojans;

  Campaign(const std::string& name, const core::DeterrentConfig& cfg, unsigned width,
           std::size_t n_trojans)
      : bench(bench_gen::load_benchmark(name)), det(bench.scan.comb, cfg) {
    det.prepare();
    sat::NetlistOracle oracle(bench.scan.comb);
    util::Rng rng(0xacceded);
    trojan::TrojanSampleConfig tcfg;
    tcfg.width = width;
    tcfg.count = n_trojans;
    trojans = trojan::sample_trojans(bench.scan.comb, det.rare_nets(), tcfg, oracle, rng);
  }

  double coverage(const sim::PatternSet& patterns) const {
    return trojan::evaluate_coverage(bench.scan.comb, trojans, patterns)
        .coverage_percent();
  }
};

core::DeterrentConfig quick_config() {
  core::DeterrentConfig cfg;
  cfg.updates = 10;
  cfg.k_patterns = 32;
  cfg.ppo.episodes_per_update = 12;
  cfg.seed = 17;
  return cfg;
}

TEST(Integration, DeterrentBeatsRandomWithFarFewerPatterns) {
  Campaign campaign("c2670_like", quick_config(), 4, 60);
  ASSERT_GE(campaign.trojans.size(), 40u);
  campaign.det.train();
  const auto patterns = campaign.det.extract_patterns();
  ASSERT_GT(patterns.pattern_count(), 0u);

  util::Rng rng(5);
  const auto random = sim::PatternSet::random(
      campaign.bench.scan.comb.inputs().size(), 2000, rng);

  const double cov_det = campaign.coverage(patterns);
  const double cov_rnd = campaign.coverage(random);
  EXPECT_GT(cov_det, cov_rnd)
      << "DETERRENT (" << patterns.pattern_count() << " patterns) must beat random ("
      << random.pattern_count() << " patterns)";
  EXPECT_LT(patterns.pattern_count(), random.pattern_count() / 10);
}

TEST(Integration, DeterrentBeatsAtpgLike) {
  Campaign campaign("c2670_like", quick_config(), 4, 60);
  campaign.det.train();
  const auto det_patterns = campaign.det.extract_patterns();
  util::Rng rng(6);
  const auto atpg =
      baselines::run_atpg_like(campaign.bench.scan.comb, campaign.det.rare_nets(), rng);
  EXPECT_GT(campaign.coverage(det_patterns), campaign.coverage(atpg.patterns))
      << "single-net ATPG excitation must miss multi-net conjunctions";
}

TEST(Integration, DeterrentBeatsTarmacAtEqualPatternBudget) {
  // The Figure 6 shape: pattern-for-pattern, DETERRENT's ranked test set
  // accumulates coverage at least as fast as TARMAC's sampled cliques.
  auto cfg = quick_config();
  cfg.updates = 16;
  cfg.ppo.episodes_per_update = 16;
  cfg.k_patterns = 48;
  Campaign campaign("c6288_like", cfg, 4, 60);
  campaign.det.train();
  const auto det_patterns = campaign.det.extract_patterns();
  ASSERT_GT(det_patterns.pattern_count(), 0u);

  baselines::TarmacConfig tcfg;
  tcfg.n_patterns = det_patterns.pattern_count();  // equal budget
  util::Rng rng(7);
  auto tarmac = baselines::run_tarmac(campaign.bench.scan.comb,
                                      campaign.det.rare_nets(),
                                      campaign.det.matrix(), tcfg, rng);

  const double cov_det = campaign.coverage(det_patterns);
  const double cov_tarmac = campaign.coverage(tarmac.patterns);
  EXPECT_GE(cov_det, cov_tarmac - 5.0)
      << "at equal pattern count DETERRENT must not trail TARMAC";
}

TEST(Integration, CrossThresholdGeneralization) {
  // §4.5: train with rare nets at θ=0.14, evaluate triggers drawn at θ=0.10.
  auto bench = bench_gen::load_benchmark("c6288_like");
  core::DeterrentConfig cfg = quick_config();
  cfg.rare.threshold = 0.14;
  core::Deterrent det(bench.scan.comb, cfg);
  det.prepare();
  det.train();
  const auto patterns = det.extract_patterns();

  // Triggers from the tighter θ=0.10 rare-net set.
  util::Rng rng(9);
  analysis::RareNetConfig tight;
  tight.threshold = 0.10;
  const auto rare_tight = analysis::find_rare_nets(bench.scan.comb, tight, rng);
  ASSERT_GE(rare_tight.size(), 8u);
  sat::NetlistOracle oracle(bench.scan.comb);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 4;
  tcfg.count = 40;
  const auto trojans =
      trojan::sample_trojans(bench.scan.comb, rare_tight, tcfg, oracle, rng);

  const double cov =
      trojan::evaluate_coverage(bench.scan.comb, trojans, patterns).coverage_percent();
  util::Rng rng2(10);
  const auto random =
      sim::PatternSet::random(bench.scan.comb.inputs().size(), 1000, rng2);
  const double cov_rnd =
      trojan::evaluate_coverage(bench.scan.comb, trojans, random).coverage_percent();
  EXPECT_GT(cov, cov_rnd) << "θ=0.14 training must transfer to θ=0.10 triggers";
}

TEST(Integration, SequentialBenchmarkEndToEnd) {
  // Full-scan pipeline on an s-series profile.
  auto cfg = quick_config();
  cfg.updates = 6;
  Campaign campaign("s13207_like", cfg, 4, 40);
  ASSERT_GE(campaign.trojans.size(), 20u);
  campaign.det.train();
  const auto patterns = campaign.det.extract_patterns();
  ASSERT_GT(patterns.pattern_count(), 0u);
  EXPECT_GE(campaign.coverage(patterns), 0.0);  // runs clean end to end
  // Pattern arity covers PIs + scanned state.
  EXPECT_EQ(patterns.input_count(),
            campaign.bench.scan.comb.inputs().size());
}

}  // namespace
}  // namespace deterrent

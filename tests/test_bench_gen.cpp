#include <gtest/gtest.h>

#include <map>

#include "bench_gen/library.hpp"
#include "bench_gen/mips16.hpp"
#include "bench_gen/multiplier.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/stats.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace deterrent::bench_gen {
namespace {

using netlist::Netlist;
using netlist::NetId;

// ------------------------------------------------------ random circuit -----

TEST(RandomCircuit, DeterministicForSeed) {
  RandomCircuitProfile p;
  p.n_gates = 300;
  p.seed = 99;
  const Netlist a = generate_random_circuit(p);
  const Netlist b = generate_random_circuit(p);
  ASSERT_EQ(a.net_count(), b.net_count());
  for (NetId id = 0; id < a.net_count(); ++id) {
    ASSERT_EQ(a.type(id), b.type(id));
    const auto fa = a.fanins(id);
    const auto fb = b.fanins(id);
    ASSERT_EQ(std::vector<NetId>(fa.begin(), fa.end()),
              std::vector<NetId>(fb.begin(), fb.end()));
  }
}

TEST(RandomCircuit, SeedChangesStructure) {
  RandomCircuitProfile p;
  p.n_gates = 300;
  p.seed = 1;
  const Netlist a = generate_random_circuit(p);
  p.seed = 2;
  const Netlist b = generate_random_circuit(p);
  bool any_diff = a.net_count() != b.net_count();
  for (NetId id = 0; !any_diff && id < a.net_count(); ++id)
    any_diff = a.type(id) != b.type(id);
  EXPECT_TRUE(any_diff);
}

TEST(RandomCircuit, HonorsProfileCounts) {
  RandomCircuitProfile p;
  p.n_inputs = 40;
  p.n_outputs = 20;
  p.n_gates = 500;
  p.n_dffs = 30;
  p.seed = 5;
  const Netlist nl = generate_random_circuit(p);
  const auto stats = netlist::compute_stats(nl);
  EXPECT_EQ(stats.input_count, 40u);
  EXPECT_EQ(stats.gate_count, 500u);
  EXPECT_EQ(stats.dff_count, 30u);
  EXPECT_LE(stats.output_count, 20u);
  EXPECT_GT(stats.output_count, 0u);
}

TEST(RandomCircuit, SequentialProfileSurvivesScanAndSim) {
  RandomCircuitProfile p;
  p.n_gates = 400;
  p.n_dffs = 50;
  p.seed = 7;
  const Netlist nl = generate_random_circuit(p);
  EXPECT_TRUE(nl.is_sequential());
  const auto view = netlist::make_full_scan(nl);
  EXPECT_FALSE(view.comb.is_sequential());
  EXPECT_EQ(view.pseudo_inputs.size(), 50u);
  sim::Simulator sim(view.comb);  // must construct and run
  util::Rng rng(1);
  const auto patterns = sim::PatternSet::random(view.comb.inputs().size(), 64, rng);
  sim.simulate(patterns, [](std::size_t, std::uint64_t, std::span<const std::uint64_t>) {});
}

// ---------------------------------------------------------- multiplier -----

class MultiplierWidths : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiplierWidths, ComputesProducts) {
  const unsigned width = GetParam();
  const Netlist nl = generate_array_multiplier(width);
  ASSERT_EQ(nl.inputs().size(), 2u * width);
  ASSERT_EQ(nl.outputs().size(), 2u * width);
  sim::Simulator sim(nl);
  util::Rng rng(width);

  for (int trial = 0; trial < 40; ++trial) {
    const std::uint64_t a = rng.below(1ULL << width);
    const std::uint64_t b = rng.below(1ULL << width);
    sim::Pattern p(2 * width);
    for (unsigned i = 0; i < width; ++i) {
      p.set(i, (a >> i) & 1ULL);
      p.set(width + i, (b >> i) & 1ULL);
    }
    const auto values = sim.simulate_pattern(p);
    std::uint64_t product = 0;
    for (unsigned i = 0; i < 2 * width; ++i)
      product |= static_cast<std::uint64_t>(values[nl.outputs()[i]]) << i;
    ASSERT_EQ(product, a * b) << a << "×" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MultiplierWidths, ::testing::Values(2, 3, 4, 8, 16));

TEST(Multiplier, C6288LikeGateCountInRange) {
  const Netlist nl = generate_array_multiplier(16);
  const auto stats = netlist::compute_stats(nl);
  // ISCAS-85 c6288 is ~2.4k cells (NOR implementation); the functional FA
  // implementation lands in the same ballpark.
  EXPECT_GT(stats.gate_count, 1000u);
  EXPECT_LT(stats.gate_count, 3500u);
  EXPECT_GT(stats.max_level, 30u);  // deep carry chains
}

// -------------------------------------------------------------- MIPS16 -----

/// Drives the full-scan view of the generated processor one cycle at a time.
class Mips16Test : public ::testing::Test {
 protected:
  static constexpr unsigned kAdd = 0, kSub = 1, kAnd = 2, kOr = 3, kXor = 4,
                            kNor = 5, kSlt = 6, kSll = 7, kSrl = 8, kMul = 9,
                            kLw = 10, kSw = 11, kBeq = 12, kAddi = 13, kJmp = 14,
                            kMflo = 15;

  void SetUp() override {
    view_ = netlist::make_full_scan(generate_mips16({}));
    sim_ = std::make_unique<sim::Simulator>(view_.comb);
    const auto inputs = view_.comb.inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i)
      input_index_[view_.comb.name(inputs[i])] = i;
    for (std::size_t i = 0; i < view_.pseudo_inputs.size(); ++i)
      pseudo_index_[view_.pseudo_inputs[i]] = i;
  }

  void set_word(sim::Pattern& p, const std::string& prefix, std::uint16_t value) {
    for (unsigned b = 0; b < 16; ++b) {
      const auto it = input_index_.find(prefix + std::to_string(b));
      ASSERT_NE(it, input_index_.end()) << prefix << b;
      p.set(it->second, (value >> b) & 1u);
    }
  }

  static std::uint16_t encode(unsigned op, unsigned rs, unsigned rt, unsigned rd) {
    return static_cast<std::uint16_t>((op << 12) | (rs << 8) | (rt << 4) | rd);
  }

  /// Runs one cycle. regs[0] is ignored (R0 == 0).
  std::vector<bool> cycle(std::uint16_t instr, std::uint16_t mem_rdata,
                          std::uint16_t pc, const std::array<std::uint16_t, 16>& regs,
                          std::uint16_t hi = 0, std::uint16_t lo = 0) {
    sim::Pattern p(view_.comb.inputs().size());
    set_word(p, "instr", instr);
    set_word(p, "mem_rdata", mem_rdata);
    set_word(p, "pc", pc);
    for (unsigned r = 1; r < 16; ++r)
      set_word(p, "r" + std::to_string(r) + "_", regs[r]);
    set_word(p, "hi", hi);
    set_word(p, "lo", lo);
    return sim_->simulate_pattern(p);
  }

  std::uint16_t out_word(const std::vector<bool>& values, std::size_t offset) const {
    std::uint16_t w = 0;
    for (unsigned b = 0; b < 16; ++b)
      w |= static_cast<std::uint16_t>(values[view_.comb.outputs()[offset + b]]) << b;
    return w;
  }

  // Output layout: [0,16) mem_addr; [16,32) mem_wdata; 32 mem_write;
  // 33 take_branch; [34,50) wb.
  std::uint16_t mem_addr(const std::vector<bool>& v) const { return out_word(v, 0); }
  std::uint16_t mem_wdata(const std::vector<bool>& v) const { return out_word(v, 16); }
  bool mem_write(const std::vector<bool>& v) const {
    return v[view_.comb.outputs()[32]];
  }
  bool take_branch(const std::vector<bool>& v) const {
    return v[view_.comb.outputs()[33]];
  }
  std::uint16_t wb(const std::vector<bool>& v) const { return out_word(v, 34); }

  /// Next-cycle value of a named state word (via the scan pseudo-outputs).
  std::uint16_t next_state(const std::vector<bool>& values, const std::string& prefix) {
    std::uint16_t w = 0;
    for (unsigned b = 0; b < 16; ++b) {
      const auto q = view_.comb.find(prefix + std::to_string(b));
      EXPECT_TRUE(q.has_value()) << prefix << b;
      const std::size_t idx = pseudo_index_.at(*q);
      w |= static_cast<std::uint16_t>(values[view_.pseudo_outputs[idx]]) << b;
    }
    return w;
  }

  netlist::ScanView view_;
  std::unique_ptr<sim::Simulator> sim_;
  std::map<std::string, std::size_t> input_index_;
  std::map<NetId, std::size_t> pseudo_index_;
};

TEST_F(Mips16Test, StructureIsSubstantial) {
  const auto stats = netlist::compute_stats(view_.comb);
  EXPECT_GT(stats.gate_count, 3000u);
  EXPECT_EQ(stats.input_count, 16u + 16u + (16u + 240u + 32u));
}

TEST_F(Mips16Test, ArithmeticOps) {
  std::array<std::uint16_t, 16> regs{};
  regs[1] = 0x1234;
  regs[2] = 0x0fff;
  util::Rng rng(3);
  for (int trial = 0; trial < 12; ++trial) {
    regs[1] = static_cast<std::uint16_t>(rng.below(65536));
    regs[2] = static_cast<std::uint16_t>(rng.below(65536));
    auto v = cycle(encode(kAdd, 1, 2, 3), 0, 0x10, regs);
    EXPECT_EQ(wb(v), static_cast<std::uint16_t>(regs[1] + regs[2]));
    EXPECT_EQ(next_state(v, "r3_"), static_cast<std::uint16_t>(regs[1] + regs[2]));
    v = cycle(encode(kSub, 1, 2, 3), 0, 0x10, regs);
    EXPECT_EQ(wb(v), static_cast<std::uint16_t>(regs[1] - regs[2]));
  }
}

TEST_F(Mips16Test, LogicOps) {
  std::array<std::uint16_t, 16> regs{};
  regs[4] = 0xA5C3;
  regs[5] = 0x0F0F;
  auto v = cycle(encode(kAnd, 4, 5, 6), 0, 0, regs);
  EXPECT_EQ(wb(v), 0xA5C3 & 0x0F0F);
  v = cycle(encode(kOr, 4, 5, 6), 0, 0, regs);
  EXPECT_EQ(wb(v), 0xA5C3 | 0x0F0F);
  v = cycle(encode(kXor, 4, 5, 6), 0, 0, regs);
  EXPECT_EQ(wb(v), 0xA5C3 ^ 0x0F0F);
  v = cycle(encode(kNor, 4, 5, 6), 0, 0, regs);
  EXPECT_EQ(wb(v), static_cast<std::uint16_t>(~(0xA5C3 | 0x0F0F)));
}

TEST_F(Mips16Test, SetLessThanSigned) {
  std::array<std::uint16_t, 16> regs{};
  regs[1] = static_cast<std::uint16_t>(-5);
  regs[2] = 3;
  auto v = cycle(encode(kSlt, 1, 2, 3), 0, 0, regs);
  EXPECT_EQ(wb(v), 1u);  // -5 < 3
  v = cycle(encode(kSlt, 2, 1, 3), 0, 0, regs);
  EXPECT_EQ(wb(v), 0u);
}

TEST_F(Mips16Test, Shifts) {
  std::array<std::uint16_t, 16> regs{};
  regs[2] = 0x00F1;
  for (unsigned sh = 0; sh < 16; sh += 3) {
    auto v = cycle(encode(kSll, 1, 2, sh), 0, 0, regs);
    EXPECT_EQ(wb(v), static_cast<std::uint16_t>(regs[2] << sh)) << "sll " << sh;
    v = cycle(encode(kSrl, 1, 2, sh), 0, 0, regs);
    EXPECT_EQ(wb(v), static_cast<std::uint16_t>(regs[2] >> sh)) << "srl " << sh;
  }
}

TEST_F(Mips16Test, MultiplyUpdatesHiLo) {
  std::array<std::uint16_t, 16> regs{};
  regs[1] = 0x0123;
  regs[2] = 0x0456;
  const std::uint32_t product = 0x0123u * 0x0456u;
  const auto v = cycle(encode(kMul, 1, 2, 3), 0, 0, regs);
  EXPECT_EQ(wb(v), static_cast<std::uint16_t>(product & 0xFFFF));
  EXPECT_EQ(next_state(v, "lo"), static_cast<std::uint16_t>(product & 0xFFFF));
  EXPECT_EQ(next_state(v, "hi"), static_cast<std::uint16_t>(product >> 16));
}

TEST_F(Mips16Test, MfloReadsLo) {
  std::array<std::uint16_t, 16> regs{};
  const auto v = cycle(encode(kMflo, 0, 0, 7), 0, 0, regs, /*hi=*/0xAAAA,
                       /*lo=*/0xBEEF);
  EXPECT_EQ(wb(v), 0xBEEF);
  EXPECT_EQ(next_state(v, "r7_"), 0xBEEF);
}

TEST_F(Mips16Test, LoadStoreAndAddressing) {
  std::array<std::uint16_t, 16> regs{};
  regs[1] = 0x2000;
  // LW r3, 2(r1): wb = mem_rdata; addr = r1 + 2.
  auto v = cycle(encode(kLw, 1, 0, 2), 0xCAFE, 0, regs);
  EXPECT_EQ(wb(v), 0xCAFE);
  EXPECT_EQ(mem_addr(v), 0x2002);
  EXPECT_FALSE(mem_write(v));
  // SW r2, -1(r1): addr = r1 - 1 (sign-extended imm), wdata = r2.
  regs[2] = 0x7777;
  v = cycle(encode(kSw, 1, 2, 0xF), 0, 0, regs);
  EXPECT_EQ(mem_addr(v), 0x1FFF);
  EXPECT_EQ(mem_wdata(v), 0x7777);
  EXPECT_TRUE(mem_write(v));
}

TEST_F(Mips16Test, LoadWritesTargetOfRtFieldEncodedInRd) {
  std::array<std::uint16_t, 16> regs{};
  const auto v = cycle(encode(kLw, 1, 0, 2), 0xD00D, 0, regs);
  // Destination is the rd field (2 here): r2 next state gets the loaded word.
  EXPECT_EQ(next_state(v, "r2_"), 0xD00D);
}

TEST_F(Mips16Test, BranchEqualTakenAndNotTaken) {
  std::array<std::uint16_t, 16> regs{};
  regs[1] = 42;
  regs[2] = 42;
  regs[3] = 43;
  // BEQ r1, r2, +3: pc_next = pc + 1 + 3.
  auto v = cycle(encode(kBeq, 1, 2, 3), 0, 0x100, regs);
  EXPECT_TRUE(take_branch(v));
  EXPECT_EQ(next_state(v, "pc"), 0x104);
  // Not equal: fall through.
  v = cycle(encode(kBeq, 1, 3, 3), 0, 0x100, regs);
  EXPECT_FALSE(take_branch(v));
  EXPECT_EQ(next_state(v, "pc"), 0x101);
  // Negative offset: imm4 = 0xF = -1 ⇒ pc+1-1 = pc.
  v = cycle(encode(kBeq, 1, 2, 0xF), 0, 0x100, regs);
  EXPECT_EQ(next_state(v, "pc"), 0x100);
}

TEST_F(Mips16Test, JumpReplacesLow12Bits) {
  std::array<std::uint16_t, 16> regs{};
  const std::uint16_t instr = static_cast<std::uint16_t>((kJmp << 12) | 0x0ABC);
  const auto v = cycle(instr, 0, 0xF123, regs);
  EXPECT_EQ(next_state(v, "pc"), 0xFABC);
}

TEST_F(Mips16Test, AddiSignExtends) {
  std::array<std::uint16_t, 16> regs{};
  regs[1] = 100;
  auto v = cycle(encode(kAddi, 1, 0, 5), 0, 0, regs);
  EXPECT_EQ(wb(v), 105);
  v = cycle(encode(kAddi, 1, 0, 0xF), 0, 0, regs);  // imm = -1
  EXPECT_EQ(wb(v), 99);
}

TEST_F(Mips16Test, WritesToR0AreIgnoredAndOthersHold) {
  std::array<std::uint16_t, 16> regs{};
  regs[1] = 7;
  regs[5] = 0x5555;
  // ADD r0 = r1 + r1: no architectural register may change except pc.
  const auto v = cycle(encode(kAdd, 1, 1, 0), 0, 0x10, regs);
  for (unsigned r = 1; r < 16; ++r)
    EXPECT_EQ(next_state(v, "r" + std::to_string(r) + "_"), regs[r]) << "r" << r;
}

TEST_F(Mips16Test, UnrelatedRegistersHoldDuringWrite) {
  std::array<std::uint16_t, 16> regs{};
  regs[1] = 10;
  regs[2] = 20;
  regs[9] = 0x9999;
  const auto v = cycle(encode(kAdd, 1, 2, 3), 0, 0, regs);
  EXPECT_EQ(next_state(v, "r3_"), 30u);
  EXPECT_EQ(next_state(v, "r9_"), 0x9999);
  EXPECT_EQ(next_state(v, "r1_"), 10u);
}

// -------------------------------------------------------------- library ----

TEST(Library, AllNamedBenchmarksLoad) {
  for (const auto& name : benchmark_names()) {
    const Benchmark bench = load_benchmark(name);
    EXPECT_EQ(bench.name, name);
    EXPECT_FALSE(bench.scan.comb.is_sequential());
    EXPECT_GT(bench.scan.comb.gate_count(), 100u);
    EXPECT_GT(bench.paper_gates, 0u);
  }
}

TEST(Library, UnknownNameThrows) { EXPECT_THROW(load_benchmark("c9999"), Error); }

TEST(Library, GateCountsTrackPaper) {
  // Combinational profiles are sized to the paper's gate column exactly;
  // structural generators (multiplier, mips) land within a factor of ~2.5
  // in at least one direction documented in EXPERIMENTS.md.
  for (const auto& name : {"c2670_like", "c5315_like", "c7552_like", "s13207_like"}) {
    const Benchmark bench = load_benchmark(name);
    EXPECT_EQ(bench.original.gate_count(), bench.paper_gates) << name;
  }
}

TEST(Library, SequentialProfilesAreSequential) {
  for (const auto& name : {"s13207_like", "s15850_like", "s35932_like", "mips16_like"}) {
    const Benchmark bench = load_benchmark(name);
    EXPECT_TRUE(bench.original.is_sequential()) << name;
    EXPECT_FALSE(bench.scan.pseudo_inputs.empty()) << name;
  }
}

TEST(Library, FileLoadRoundTrip) {
  const Benchmark mult = load_benchmark("c6288_like");
  const std::string path = ::testing::TempDir() + "/c6288_like.bench";
  netlist::write_bench_file(mult.original, path);
  const Benchmark loaded = load_benchmark_file(path);
  EXPECT_EQ(loaded.original.gate_count(), mult.original.gate_count());
  EXPECT_EQ(loaded.original.inputs().size(), mult.original.inputs().size());
}

}  // namespace
}  // namespace deterrent::bench_gen

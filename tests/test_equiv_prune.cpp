// Tests for the SAT-based equivalence checker (miter) and dead-logic pruning,
// including the Trojan-relevant property: an HT-infected design is
// inequivalent to the golden one, and the counterexample the checker returns
// IS a trigger-activating test pattern.
#include <gtest/gtest.h>

#include "analysis/compatibility.hpp"
#include "analysis/rare_nets.hpp"
#include "bench_gen/library.hpp"
#include "bench_gen/multiplier.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/prune.hpp"
#include "sat/equivalence.hpp"
#include "sim/simulator.hpp"
#include "trojan/trojan.hpp"
#include "util/thread_pool.hpp"

namespace deterrent {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

Netlist small_random(std::uint64_t seed, std::size_t gates = 150) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 10;
  p.n_outputs = 5;
  p.n_gates = gates;
  p.seed = seed;
  return bench_gen::generate_random_circuit(p);
}

// --------------------------------------------------------- equivalence -----

TEST(Equivalence, DesignEqualsItself) {
  const Netlist nl = small_random(1);
  const auto result = sat::check_equivalence(nl, nl);
  EXPECT_TRUE(result.equivalent);
  EXPECT_FALSE(result.counterexample.has_value());
}

TEST(Equivalence, DeMorganPairsAreEquivalent) {
  // NOT(a AND b) == NOT(a) OR NOT(b).
  const Netlist lhs = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = AND(a, b)\ny = NOT(n)\n");
  const Netlist rhs = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nnb = NOT(b)\ny = OR(na, nb)\n");
  EXPECT_TRUE(sat::check_equivalence(lhs, rhs).equivalent);
}

TEST(Equivalence, XorVsXnorDiffer) {
  const Netlist lhs = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n");
  const Netlist rhs = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XNOR(a, b)\n");
  const auto result = sat::check_equivalence(lhs, rhs);
  EXPECT_FALSE(result.equivalent);
  ASSERT_TRUE(result.counterexample.has_value());
}

TEST(Equivalence, CounterexampleActuallyDistinguishes) {
  // Mutate one random gate type; if the checker says "different", replaying
  // the counterexample must show differing outputs.
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const Netlist original = small_random(seed);
    // Rebuild with one AND flipped to OR (first eligible gate).
    NetlistBuilder b;
    for (NetId id = 0; id < original.net_count(); ++id) b.declare(original.name(id));
    bool mutated = false;
    for (NetId id = 0; id < original.net_count(); ++id) {
      const auto type = original.type(id);
      const auto fanins = original.fanins(id);
      if (type == GateType::Input) {
        b.define_input(id);
      } else if (!mutated && type == GateType::And) {
        b.define_gate(id, GateType::Or, {fanins.begin(), fanins.end()});
        mutated = true;
      } else {
        b.define_gate(id, type, {fanins.begin(), fanins.end()});
      }
    }
    for (const NetId out : original.outputs()) b.mark_output(out);
    const Netlist variant = b.build();
    if (!mutated) continue;

    const auto result = sat::check_equivalence(original, variant);
    if (result.equivalent) continue;  // mutation can be functionally masked
    ASSERT_TRUE(result.counterexample.has_value());
    sim::Simulator sim_a(original);
    sim::Simulator sim_b(variant);
    const auto va = sim_a.simulate_pattern(*result.counterexample);
    const auto vb = sim_b.simulate_pattern(*result.counterexample);
    bool any_diff = false;
    for (std::size_t o = 0; o < original.outputs().size(); ++o)
      any_diff = any_diff ||
                 va[original.outputs()[o]] != vb[variant.outputs()[o]];
    EXPECT_TRUE(any_diff) << "seed " << seed;
  }
}

TEST(Equivalence, InfectedDesignCounterexampleActivatesTrigger) {
  // The killer application: equivalence-check golden vs HT-infected. The
  // only way they differ is when the trigger fires, so the SAT
  // counterexample must drive every select net to its rare value.
  const Netlist golden = small_random(33, 200);
  util::Rng rng(5);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.2;
  const auto rare = analysis::find_rare_nets(golden, rcfg, rng);
  if (rare.size() < 4) GTEST_SKIP();
  sat::NetlistOracle oracle(golden);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 3;
  tcfg.count = 5;
  const auto trojans = trojan::sample_trojans(golden, rare, tcfg, oracle, rng);
  ASSERT_FALSE(trojans.empty());

  for (const auto& ht : trojans) {
    const Netlist infected = trojan::apply_trojan(golden, ht);
    const auto result = sat::check_equivalence(golden, infected);
    ASSERT_FALSE(result.equivalent) << "HT vanished?";
    ASSERT_TRUE(result.counterexample.has_value());
    sim::Simulator sim(golden);
    const auto values = sim.simulate_pattern(*result.counterexample);
    for (const auto& rn : ht.trigger)
      EXPECT_EQ(values[rn.net], rn.rare_value)
          << "counterexample does not activate the trigger";
  }
}

TEST(Equivalence, MismatchedInterfacesThrow) {
  const Netlist a = netlist::read_bench_string("INPUT(x)\nOUTPUT(y)\ny = NOT(x)\n");
  const Netlist b = netlist::read_bench_string(
      "INPUT(x)\nINPUT(z)\nOUTPUT(y)\ny = AND(x, z)\n");
  EXPECT_THROW(sat::check_equivalence(a, b), Error);
}

TEST(Equivalence, MultiplierCommutes) {
  // a*b == b*a through a rewired instance: swap the operand input halves.
  const Netlist mult = bench_gen::generate_array_multiplier(4);
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (std::size_t i = 0; i < 8; ++i)
    ins.push_back(b.add_input("i" + std::to_string(i)));
  // Instantiate the multiplier with swapped halves.
  std::vector<NetId> map(mult.net_count(), netlist::kNoNet);
  for (unsigned i = 0; i < 4; ++i) {
    map[mult.inputs()[i]] = ins[4 + i];  // a ← b
    map[mult.inputs()[4 + i]] = ins[i];  // b ← a
  }
  for (const NetId id : mult.topo_order()) {
    if (mult.type(id) == GateType::Input) continue;
    std::vector<NetId> fanins;
    for (const NetId f : mult.fanins(id)) fanins.push_back(map[f]);
    map[id] = b.add_gate(mult.type(id), std::move(fanins));
  }
  for (const NetId out : mult.outputs()) b.mark_output(map[out]);
  const Netlist swapped = b.build();
  EXPECT_TRUE(sat::check_equivalence(mult, swapped).equivalent);
}

// -------------------------------------------------------------- pruning ----

TEST(Prune, RemovesDeadCone) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId live = b.add_gate(GateType::Not, {a}, "live");
  const NetId dead1 = b.add_gate(GateType::Buf, {a}, "dead1");
  b.add_gate(GateType::Not, {dead1}, "dead2");
  b.mark_output(live);
  const Netlist nl = b.build();

  const auto pruned = netlist::prune_dead_logic(nl);
  EXPECT_EQ(pruned.removed_nets, 2u);
  EXPECT_EQ(pruned.netlist.net_count(), 2u);
  EXPECT_TRUE(pruned.netlist.find("live").has_value());
  EXPECT_FALSE(pruned.netlist.find("dead1").has_value());
  EXPECT_NE(pruned.net_map[live], netlist::kNoNet);
  EXPECT_EQ(pruned.net_map[dead1], netlist::kNoNet);
}

TEST(Prune, KeepsAllInputs) {
  NetlistBuilder b;
  b.add_input("unused_pi");
  const NetId a = b.add_input("a");
  b.mark_output(b.add_gate(GateType::Not, {a}, "y"));
  const auto pruned = netlist::prune_dead_logic(b.build());
  EXPECT_EQ(pruned.netlist.inputs().size(), 2u);  // pattern arity preserved
}

TEST(Prune, SequentialStateIsLive) {
  // Logic feeding only a DFF's D input is observable state, not dead.
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId d = b.add_gate(GateType::Not, {a}, "d");
  const NetId q = b.add_dff(d, "q");
  b.mark_output(b.add_gate(GateType::Buf, {q}, "y"));
  const auto pruned = netlist::prune_dead_logic(b.build());
  EXPECT_EQ(pruned.removed_nets, 0u);
  EXPECT_TRUE(pruned.netlist.find("d").has_value());
}

TEST(Prune, PreservesFunction) {
  // Property: pruning never changes the observable function.
  for (std::uint64_t seed = 40; seed < 44; ++seed) {
    const Netlist nl = small_random(seed, 250);
    const auto pruned = netlist::prune_dead_logic(nl);
    ASSERT_EQ(pruned.netlist.outputs().size(), nl.outputs().size());
    const auto result = sat::check_equivalence(nl, pruned.netlist);
    EXPECT_TRUE(result.equivalent) << "seed " << seed;
  }
}

TEST(Prune, IdempotentOnCleanNetlist) {
  const Netlist nl = bench_gen::generate_array_multiplier(4);
  const auto once = netlist::prune_dead_logic(nl);
  const auto twice = netlist::prune_dead_logic(once.netlist);
  EXPECT_EQ(twice.removed_nets, 0u);
  EXPECT_EQ(twice.netlist.net_count(), once.netlist.net_count());
}

// --------------------------------------------------------- query pinning ---

// The compatibility matrix is a pure function of (netlist, rare nets, seed).
// Solver inprocessing and the clause-sharing portfolio are pure accelerators:
// across inprocess on/off × portfolio width 1/4 every answer — and therefore
// every matrix bit — must be identical, on a real processor design (MIPS16)
// and on a random circuit alike.
TEST(QueryPinning, InprocessAndPortfolioKeepCompatibilityBitIdentical) {
  std::vector<std::pair<std::string, Netlist>> designs;
  designs.emplace_back("random", small_random(77, 300));
  designs.emplace_back("mips16",
                       bench_gen::load_benchmark("mips16_like").scan.comb);

  util::ThreadPool pool(4);
  for (const auto& [name, nl] : designs) {
    analysis::RareNetConfig rcfg;
    rcfg.threshold = 0.15;
    rcfg.sim_patterns = 1 << 12;
    util::Rng rare_rng(911);
    auto rare = analysis::find_rare_nets(nl, rcfg, rare_rng);
    if (rare.size() > 14) rare.resize(14);
    ASSERT_GE(rare.size(), 2u) << name;

    // Weak prefilter so a meaningful share of pairs reaches the solver.
    const auto build = [&](bool inprocess, std::size_t portfolio_threads) {
      analysis::CompatibilityBuildConfig ccfg;
      ccfg.sim_patterns = 1 << 8;
      ccfg.inprocess = inprocess;
      ccfg.portfolio_threads = portfolio_threads;
      util::Rng rng(4242);
      analysis::CompatibilityBuildStats stats;
      auto matrix =
          analysis::build_compatibility(nl, rare, ccfg, rng, &pool, &stats);
      EXPECT_EQ(stats.timeout_pairs, 0u) << name;  // answers are all exact
      return matrix;
    };

    const auto reference = build(false, 0);
    for (const bool inprocess : {false, true})
      for (const std::size_t width : {std::size_t{1}, std::size_t{4}}) {
        const auto matrix = build(inprocess, width);
        ASSERT_EQ(matrix.size(), reference.size()) << name;
        for (std::uint32_t i = 0; i < matrix.size(); ++i)
          ASSERT_EQ(matrix.row(i), reference.row(i))
              << name << ": row " << i << " diverged with inprocess="
              << inprocess << " portfolio=" << width;
      }
  }
}

}  // namespace
}  // namespace deterrent

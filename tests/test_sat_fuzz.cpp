// Differential fuzz harness for the SAT core: random CNF and random-circuit
// instances are thrown at every inprocessing pass combination and portfolio
// width, and every answer is cross-checked against an independent reference —
// brute force on small formulas, an untouched solver on larger ones, and the
// logic simulator for circuit encodings. SAT answers must replay (model
// satisfies the original formula / the simulated circuit agrees); UNSAT
// answers must certify (core stays within the assumptions and is itself
// contradictory). Every failure message carries the seed that reproduces it.
//
// DETERRENT_SAT_FUZZ_SECONDS caps the wall-clock budget per test (default 8;
// CI's dedicated sat-fuzz job raises it). Loops stop early when the budget
// runs out, so the suite stays time-boxed on slow machines.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_gen/random_circuit.hpp"
#include "sat/dimacs.hpp"
#include "sat/encoder.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace deterrent {
namespace {

using sat::Clause;
using sat::Cnf;
using sat::Lit;
using sat::mk_lit;
using sat::Solver;
using sat::Var;
using sat::var_of;
using sat::sign_of;

// ------------------------------------------------------------ harness ------

double fuzz_seconds() {
  if (const char* env = std::getenv("DETERRENT_SAT_FUZZ_SECONDS"))
    return std::strtod(env, nullptr);
  return 8.0;
}

/// Per-test wall-clock budget; loops drain it instead of a fixed trip count
/// so the suite is time-boxed regardless of host speed.
class FuzzBudget {
 public:
  FuzzBudget()
      : deadline_(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(fuzz_seconds()))) {}
  bool expired() const { return std::chrono::steady_clock::now() >= deadline_; }

 private:
  std::chrono::steady_clock::time_point deadline_;
};

Cnf random_cnf(util::Rng& rng, std::size_t min_vars, std::size_t max_vars,
               double clause_ratio = 4.2) {
  Cnf cnf;
  cnf.var_count = min_vars + rng.below(max_vars - min_vars + 1);
  const auto n_clauses = static_cast<std::size_t>(
      clause_ratio * static_cast<double>(cnf.var_count));
  for (std::size_t c = 0; c < n_clauses; ++c) {
    Clause clause;
    const std::size_t width = 2 + rng.below(2);  // mixed 2- and 3-clauses
    for (std::size_t k = 0; k < width; ++k)
      clause.push_back(
          mk_lit(static_cast<Var>(rng.below(cnf.var_count)), rng.bernoulli(0.5)));
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

bool brute_force_sat(const Cnf& cnf) {
  for (std::uint64_t assignment = 0; assignment < (1ULL << cnf.var_count);
       ++assignment) {
    bool all = true;
    for (const auto& clause : cnf.clauses) {
      bool sat = false;
      for (const Lit l : clause)
        if (((assignment >> var_of(l)) & 1ULL) != sign_of(l)) {
          sat = true;
          break;
        }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool model_satisfies(const Solver& solver, const Cnf& cnf) {
  for (const auto& clause : cnf.clauses) {
    bool sat = false;
    for (const Lit l : clause)
      if (solver.model_value(var_of(l)) != sign_of(l)) {
        sat = true;
        break;
      }
    if (!sat) return false;
  }
  return true;
}

Solver::InprocessConfig combo_config(unsigned combo) {
  Solver::InprocessConfig config;
  config.probing = (combo & 1u) != 0;
  config.scc = (combo & 2u) != 0;
  config.subsumption = (combo & 4u) != 0;
  config.elimination = (combo & 8u) != 0;
  return config;
}

// -------------------------------------------- CNF differential fuzzing -----

// Every one of the 16 pass combinations, against brute force, with
// assumptions on frozen variables. SAT must replay on the ORIGINAL formula
// (this is what catches reconstruction bugs); UNSAT-under-assumptions must
// produce a core that is a contradictory subset of the assumptions.
TEST(SatFuzz, InprocessCombosMatchBruteForce) {
  FuzzBudget budget;
  std::uint64_t instances = 0;
  for (std::uint64_t seed = 0; seed < 4000 && !budget.expired(); ++seed) {
    util::Rng rng(seed * 0x9e3779b9ull + 7);
    const Cnf cnf = random_cnf(rng, 5, 11);
    const unsigned combo = static_cast<unsigned>(seed & 15u);

    std::vector<Lit> assumptions;
    for (Var v = 0; v < 3; ++v)
      if (rng.bernoulli(0.6)) assumptions.push_back(mk_lit(v, rng.bernoulli(0.5)));

    Solver s;
    s.ensure_vars(cnf.var_count);
    for (const auto& clause : cnf.clauses) s.add_clause(clause);
    for (Var v = 0; v < 3; ++v) s.set_frozen(v);

    const bool formula_sat = brute_force_sat(cnf);
    if (!s.inprocess(combo_config(combo))) {
      ASSERT_FALSE(formula_sat) << "seed " << seed << " combo " << combo
                                << ": inprocess claimed UNSAT on a SAT formula\n"
                                << write_dimacs_string(cnf);
      ++instances;
      continue;
    }

    Cnf augmented = cnf;
    for (const Lit a : assumptions) augmented.clauses.push_back({a});
    const bool expected = brute_force_sat(augmented);

    const auto result = s.solve(assumptions);
    ASSERT_NE(result, Solver::Result::Unknown) << "seed " << seed;
    ASSERT_EQ(result == Solver::Result::Sat, expected)
        << "seed " << seed << " combo " << combo << "\n"
        << write_dimacs_string(cnf);

    if (result == Solver::Result::Sat) {
      ASSERT_TRUE(model_satisfies(s, cnf))
          << "seed " << seed << " combo " << combo
          << ": reconstructed model violates the original formula\n"
          << write_dimacs_string(cnf);
      for (const Lit a : assumptions)
        ASSERT_EQ(s.model_value(var_of(a)), !sign_of(a))
            << "seed " << seed << ": model ignores assumption";
    } else if (formula_sat) {
      // UNSAT purely because of the assumptions: the core must certify it.
      const auto& core = s.conflict_core();
      ASSERT_FALSE(core.empty()) << "seed " << seed;
      for (const Lit l : core) {
        bool is_assumption = false;
        for (const Lit a : assumptions) is_assumption = is_assumption || l == a;
        ASSERT_TRUE(is_assumption)
            << "seed " << seed << ": core literal outside the assumptions";
      }
      Solver fresh;
      fresh.ensure_vars(cnf.var_count);
      for (const auto& clause : cnf.clauses) fresh.add_clause(clause);
      ASSERT_EQ(fresh.solve(core), Solver::Result::Unsat)
          << "seed " << seed << ": reported core is not contradictory";
    }
    ++instances;
  }
  RecordProperty("instances", static_cast<int>(instances));
  ASSERT_GT(instances, 0u);
}

// Larger formulas (beyond brute force): an inprocessing solver and a pristine
// solver must agree query after query on one shared assumption stream.
TEST(SatFuzz, InterleavedInprocessingAgreesWithPristineSolver) {
  FuzzBudget budget;
  for (std::uint64_t seed = 0; seed < 120 && !budget.expired(); ++seed) {
    util::Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
    const Cnf cnf = random_cnf(rng, 25, 40, 4.0);

    Solver pristine;
    pristine.ensure_vars(cnf.var_count);
    for (const auto& clause : cnf.clauses) pristine.add_clause(clause);

    Solver inproc;
    inproc.ensure_vars(cnf.var_count);
    for (const auto& clause : cnf.clauses) inproc.add_clause(clause);
    for (Var v = 0; v < 6; ++v) inproc.set_frozen(v);

    for (int query = 0; query < 30; ++query) {
      if (query % 7 == 0) inproc.inprocess();
      std::vector<Lit> assumptions;
      const std::size_t n_assume = rng.below(5);
      for (std::size_t k = 0; k < n_assume; ++k)
        assumptions.push_back(
            mk_lit(static_cast<Var>(rng.below(6)), rng.bernoulli(0.5)));
      const auto a = pristine.solve(assumptions);
      const auto b = inproc.solve(assumptions);
      ASSERT_EQ(a, b) << "seed " << seed << " query " << query
                      << ": inprocessing changed a query answer";
      if (a == Solver::Result::Sat)
        ASSERT_TRUE(model_satisfies(inproc, cnf))
            << "seed " << seed << " query " << query;
    }
  }
}

// -------------------------------------------------- portfolio fuzzing ------

// Portfolio widths 1..4 (sequential and pooled) must agree with a plain
// solver on every query of a batch.
TEST(SatFuzz, PortfolioBatchAgreesWithPlainSolver) {
  FuzzBudget budget;
  util::ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 60 && !budget.expired(); ++seed) {
    util::Rng rng(seed * 2654435761ull + 3);
    const Cnf cnf = random_cnf(rng, 20, 32, 4.0);

    std::vector<sat::Portfolio::Query> queries(16);
    for (auto& q : queries) {
      const std::size_t n_assume = rng.below(4);
      for (std::size_t k = 0; k < n_assume; ++k)
        q.assumptions.push_back(
            mk_lit(static_cast<Var>(rng.below(6)), rng.bernoulli(0.5)));
    }

    std::vector<Solver::Result> reference;
    {
      Solver plain;
      plain.ensure_vars(cnf.var_count);
      for (const auto& clause : cnf.clauses) plain.add_clause(clause);
      for (const auto& q : queries) reference.push_back(plain.solve(q.assumptions));
    }

    const auto encode = [&](Solver& s, std::size_t) {
      s.ensure_vars(cnf.var_count);
      for (const auto& clause : cnf.clauses) s.add_clause(clause);
      for (Var v = 0; v < 6; ++v) s.set_frozen(v);
    };
    for (std::size_t n = 1; n <= 4; ++n) {
      sat::PortfolioConfig config;
      config.solvers = n;
      config.seed = seed + 17 * n;
      config.inprocess = (seed & 1u) != 0;
      sat::Portfolio portfolio(config, encode);
      const auto seq = portfolio.solve_batch(queries);  // deterministic path
      ASSERT_EQ(seq, reference) << "seed " << seed << " width " << n
                                << " (sequential)";
      sat::Portfolio pooled(config, encode);
      const auto par = pooled.solve_batch(queries, &pool);
      ASSERT_EQ(par, reference) << "seed " << seed << " width " << n
                                << " (pooled)";
    }
  }
}

// Race mode: all clones attack one query, first finisher cancels the rest.
// The winner's answer must match a plain solver, SAT must replay, UNSAT under
// assumptions must carry a sound core.
TEST(SatFuzz, PortfolioRaceMatchesPlainSolver) {
  FuzzBudget budget;
  util::ThreadPool pool(4);
  for (std::uint64_t seed = 0; seed < 120 && !budget.expired(); ++seed) {
    util::Rng rng(seed * 40503ull + 19);
    const Cnf cnf = random_cnf(rng, 18, 30);

    std::vector<Lit> assumptions;
    const std::size_t n_assume = rng.below(4);
    for (std::size_t k = 0; k < n_assume; ++k)
      assumptions.push_back(
          mk_lit(static_cast<Var>(rng.below(6)), rng.bernoulli(0.5)));

    Solver plain;
    plain.ensure_vars(cnf.var_count);
    for (const auto& clause : cnf.clauses) plain.add_clause(clause);
    const auto expected = plain.solve(assumptions);

    sat::PortfolioConfig config;
    config.solvers = 4;
    config.seed = seed;
    sat::Portfolio portfolio(config, [&](Solver& s, std::size_t) {
      s.ensure_vars(cnf.var_count);
      for (const auto& clause : cnf.clauses) s.add_clause(clause);
      for (Var v = 0; v < 6; ++v) s.set_frozen(v);
    });
    const auto result = portfolio.solve_one(assumptions, &pool);
    ASSERT_EQ(result, expected) << "seed " << seed;
    const Solver& winner = portfolio.winner_solver();
    if (result == Solver::Result::Sat) {
      ASSERT_TRUE(model_satisfies(winner, cnf)) << "seed " << seed;
    } else if (!assumptions.empty() && plain.okay()) {
      for (const Lit l : winner.conflict_core()) {
        bool is_assumption = false;
        for (const Lit a : assumptions) is_assumption = is_assumption || l == a;
        ASSERT_TRUE(is_assumption) << "seed " << seed;
      }
    }
  }
}

// ---------------------------------------------- circuit model replay -------

// Random circuits through the Tseitin encoder: when the solver says a net can
// take a value, extracting the primary-input assignment from the model and
// simulating it must reproduce that value on every net of the circuit — with
// inprocessing enabled, this exercises reconstruction of eliminated Tseitin
// variables end to end.
TEST(SatFuzz, CircuitModelsReplayThroughTheSimulator) {
  FuzzBudget budget;
  for (std::uint64_t seed = 1; seed < 30 && !budget.expired(); ++seed) {
    bench_gen::RandomCircuitProfile profile;
    profile.n_inputs = 10;
    profile.n_outputs = 5;
    profile.n_gates = 120;
    profile.seed = seed;
    const netlist::Netlist nl = bench_gen::generate_random_circuit(profile);
    sim::Simulator simulator(nl);
    util::Rng rng(seed * 7907ull + 11);

    Solver s;
    sat::encode_netlist(nl, s);
    std::vector<netlist::NetId> targets;
    for (int k = 0; k < 8; ++k)
      targets.push_back(static_cast<netlist::NetId>(rng.below(nl.net_count())));
    for (const netlist::NetId in : nl.inputs()) s.set_frozen(in);
    for (const netlist::NetId t : targets) s.set_frozen(t);
    ASSERT_TRUE(s.inprocess()) << "seed " << seed;

    Solver plain;
    sat::encode_netlist(nl, plain);

    for (const netlist::NetId target : targets) {
      const bool want = rng.bernoulli(0.5);
      const Lit assume[] = {mk_lit(static_cast<Var>(target), !want)};
      const auto result = s.solve(assume);
      ASSERT_EQ(result, plain.solve(assume))
          << "seed " << seed << " net " << target
          << ": inprocessed circuit answer diverged";
      if (result != Solver::Result::Sat) continue;

      sim::Pattern pattern(nl.inputs().size());
      for (std::size_t i = 0; i < nl.inputs().size(); ++i)
        pattern.set(i, s.model_value(static_cast<Var>(nl.inputs()[i])));
      const std::vector<bool> values = simulator.simulate_pattern(pattern);
      ASSERT_EQ(values[target], want)
          << "seed " << seed << " net " << target
          << ": model does not force the assumed value";
      for (netlist::NetId net = 0; net < nl.net_count(); ++net)
        ASSERT_EQ(values[net], s.model_value(static_cast<Var>(net)))
            << "seed " << seed << " net " << net
            << ": reconstructed model disagrees with simulation";
    }
  }
}

// ----------------------------------------------------- DIMACS corpus -------

// Minimized regression instances, table-driven. Each is solved by the plain
// solver and by every inprocessing combination; expectations are exact.
struct CorpusCase {
  const char* file;
  Solver::Result expected;
  std::vector<Lit> assumptions;
};

class SatCorpus : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(SatCorpus, AllInprocessCombosAgree) {
  const CorpusCase& tc = GetParam();
  const std::string path =
      std::string(DETERRENT_SOURCE_DIR) + "/tests/corpus/sat/" + tc.file;
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  const Cnf cnf = sat::read_dimacs(in);

  for (unsigned combo = 0; combo <= 16; ++combo) {
    Solver s;
    s.ensure_vars(cnf.var_count);
    bool ok = true;
    for (const auto& clause : cnf.clauses) ok = s.add_clause(clause) && ok;
    for (const Lit a : tc.assumptions) s.set_frozen(var_of(a));
    if (combo < 16 && ok) s.inprocess(combo_config(combo));

    const auto result = s.solve(tc.assumptions);
    ASSERT_EQ(result, tc.expected) << tc.file << " combo " << combo;
    if (result == Solver::Result::Sat) {
      ASSERT_TRUE(model_satisfies(s, cnf)) << tc.file << " combo " << combo;
    } else if (!tc.assumptions.empty() && s.okay()) {
      for (const Lit l : s.conflict_core()) {
        bool is_assumption = false;
        for (const Lit a : tc.assumptions) is_assumption = is_assumption || l == a;
        ASSERT_TRUE(is_assumption) << tc.file << " combo " << combo;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Minimized, SatCorpus,
    ::testing::Values(
        CorpusCase{"empty_clause_unsat.cnf", Solver::Result::Unsat, {}},
        CorpusCase{"unit_only_sat.cnf", Solver::Result::Sat, {}},
        CorpusCase{"assumption_core_unsat.cnf",
                   Solver::Result::Unsat,
                   {mk_lit(0), mk_lit(1)}},
        CorpusCase{"pure_literal_after_elimination_sat.cnf",
                   Solver::Result::Sat,
                   {}}),
    [](const ::testing::TestParamInfo<CorpusCase>& info) {
      std::string name = info.param.file;
      name.resize(name.size() - 4);  // drop ".cnf"
      for (char& c : name)
        if (c == '-' || c == '.') c = '_';
      return name;
    });

}  // namespace
}  // namespace deterrent

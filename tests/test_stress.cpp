// Stress and failure-injection tests: solver clause-database reduction under
// heavy load, deep/degenerate netlists, boundary-size pattern plumbing, env
// robustness, and error-path coverage across modules.
#include <gtest/gtest.h>

#include "analysis/compatibility.hpp"
#include "bench_gen/multiplier.hpp"
#include "bench_gen/random_circuit.hpp"
#include "core/compatible_set_env.hpp"
#include "netlist/bench_io.hpp"
#include "sat/encoder.hpp"
#include "sat/oracle.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace deterrent {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

// ------------------------------------------------- solver under pressure ---

TEST(SolverStress, ManyHardQueriesTriggerReductionAndStayCorrect) {
  // Random 3-SAT instances near the phase transition force learning; a
  // single long-lived solver must survive clause-DB reduction + compaction
  // cycles and keep answering correctly (checked by re-solving with a fresh
  // solver).
  util::Rng rng(1234);
  sat::Solver long_lived;
  const std::size_t n_vars = 60;
  long_lived.ensure_vars(n_vars);
  // Base formula: satisfiable (sparse).
  std::vector<sat::Clause> base;
  for (int c = 0; c < 120; ++c) {
    sat::Clause clause;
    for (int k = 0; k < 3; ++k)
      clause.push_back(sat::mk_lit(static_cast<sat::Var>(rng.below(n_vars)),
                                   rng.bernoulli(0.5)));
    base.push_back(clause);
    long_lived.add_clause(clause);
  }

  for (int query = 0; query < 300; ++query) {
    std::vector<sat::Lit> assumptions;
    const std::size_t n_assume = 3 + rng.below(8);
    for (std::size_t k = 0; k < n_assume; ++k)
      assumptions.push_back(sat::mk_lit(static_cast<sat::Var>(rng.below(n_vars)),
                                        rng.bernoulli(0.5)));
    const auto incremental = long_lived.solve(assumptions);

    sat::Solver fresh;
    fresh.ensure_vars(n_vars);
    for (const auto& clause : base) fresh.add_clause(clause);
    const auto reference = fresh.solve(assumptions);
    ASSERT_EQ(incremental, reference) << "query " << query;
  }
  EXPECT_GT(long_lived.stats().learnt_clauses, 0u);
}

TEST(SolverStress, DeepUnitChainPropagatesWithoutRecursion) {
  // 20k-long implication chain: stack-safety of the iterative propagator.
  sat::Solver s;
  const std::size_t n = 20000;
  s.ensure_vars(n);
  for (sat::Var v = 0; v + 1 < n; ++v)
    s.add_clause({sat::mk_lit(v, true), sat::mk_lit(v + 1)});
  s.add_clause({sat::mk_lit(0)});
  ASSERT_EQ(s.solve(), sat::Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(n - 1));
}

TEST(SolverStress, WideClause) {
  sat::Solver s;
  const std::size_t n = 5000;
  s.ensure_vars(n);
  std::vector<sat::Lit> wide;
  for (sat::Var v = 0; v < n; ++v) {
    wide.push_back(sat::mk_lit(v));
    if (v > 0) s.add_clause({sat::mk_lit(v, true)});  // force all others false
  }
  s.add_clause(wide);
  ASSERT_EQ(s.solve(), sat::Solver::Result::Sat);
  EXPECT_TRUE(s.model_value(0));  // only remaining way to satisfy the wide clause
}

// -------------------------------------------------- degenerate netlists ----

TEST(DegenerateNetlists, SingleBuffer) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId y = b.add_gate(GateType::Buf, {a}, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  sim::Simulator sim(nl);
  sim::Pattern p(1);
  p.set(0, true);
  EXPECT_TRUE(sim.simulate_pattern(p)[y]);
}

TEST(DegenerateNetlists, ConstantOnlyOutputs) {
  NetlistBuilder b;
  b.add_input("unused");
  const NetId c = b.add_const(true, "c");
  b.mark_output(c);
  const Netlist nl = b.build();
  sat::NetlistOracle oracle(nl);
  const sat::Constraint want_true{c, true};
  const sat::Constraint want_false{c, false};
  EXPECT_TRUE(oracle.satisfiable({&want_true, 1}));
  EXPECT_FALSE(oracle.satisfiable({&want_false, 1}));
}

TEST(DegenerateNetlists, VeryDeepInverterChain) {
  NetlistBuilder b;
  NetId net = b.add_input("a");
  const std::size_t depth = 5000;
  for (std::size_t i = 0; i < depth; ++i) net = b.add_gate(GateType::Not, {net});
  b.mark_output(net);
  const Netlist nl = b.build();
  EXPECT_EQ(nl.max_level(), depth);
  sim::Simulator sim(nl);
  sim::Pattern p(1);
  p.set(0, false);
  // Even depth of inversions returns the input value.
  EXPECT_EQ(sim.simulate_pattern(p)[net], depth % 2 == 1);
}

TEST(DegenerateNetlists, HighFanoutNet) {
  NetlistBuilder b;
  const NetId a = b.add_input("a");
  const NetId other = b.add_input("b");
  std::vector<NetId> consumers;
  for (int i = 0; i < 2000; ++i)
    consumers.push_back(b.add_gate(GateType::And, {a, other}));
  b.mark_output(consumers.back());
  const Netlist nl = b.build();
  EXPECT_EQ(nl.fanouts(a).size(), 2000u);
  // Encoder and solver must handle the repeated structure.
  sat::NetlistOracle oracle(nl);
  const sat::Constraint c{consumers[0], true};
  EXPECT_TRUE(oracle.satisfiable({&c, 1}));
}

TEST(DegenerateNetlists, MultiplierWidthTwoIsMinimal) {
  const Netlist nl = bench_gen::generate_array_multiplier(2);
  sim::Simulator sim(nl);
  for (unsigned a = 0; a < 4; ++a)
    for (unsigned x = 0; x < 4; ++x) {
      sim::Pattern p(4);
      p.set(0, a & 1);
      p.set(1, (a >> 1) & 1);
      p.set(2, x & 1);
      p.set(3, (x >> 1) & 1);
      const auto values = sim.simulate_pattern(p);
      unsigned product = 0;
      for (unsigned k = 0; k < 4; ++k)
        product |= static_cast<unsigned>(values[nl.outputs()[k]]) << k;
      ASSERT_EQ(product, a * x);
    }
}

// --------------------------------------------------------- env hardening ---

struct EnvFixture {
  Netlist netlist;
  std::vector<analysis::RareNet> rare;
  analysis::CompatibilityMatrix matrix;

  explicit EnvFixture(std::uint64_t seed) {
    bench_gen::RandomCircuitProfile p;
    p.n_inputs = 14;
    p.n_outputs = 8;
    p.n_gates = 200;
    p.seed = seed;
    netlist = bench_gen::generate_random_circuit(p);
    util::Rng rng(seed + 1);
    analysis::RareNetConfig rcfg;
    rcfg.threshold = 0.15;
    rare = analysis::find_rare_nets(netlist, rcfg, rng);
    matrix = analysis::build_compatibility(netlist, rare, {}, rng);
  }
};

TEST(EnvStress, ManyEpisodesNoStateLeak) {
  const EnvFixture fx(101);
  if (fx.rare.size() < 4) GTEST_SKIP();
  core::DistinctSetPool pool;
  core::EnvConfig cfg;
  cfg.reward_mode = core::RewardMode::EndOfEpisode;
  core::CompatibleSetEnv env(fx.netlist, fx.rare, fx.matrix, cfg, &pool);
  util::Rng rng(3);
  for (int episode = 0; episode < 200; ++episode) {
    const auto obs = env.reset(rng);
    // Exactly one member after reset, regardless of prior episode history.
    std::size_t ones = 0;
    for (const float v : obs) ones += v == 1.0f;
    ASSERT_EQ(ones, 1u) << "episode " << episode;
    while (true) {
      const auto& mask = env.action_mask();
      if (mask.none()) break;
      if (env.step(static_cast<std::uint32_t>(mask.find_first())).done) break;
    }
  }
  EXPECT_GT(pool.size(), 0u);
}

TEST(EnvStress, TinyConflictBudgetIsConservativeNotUnsound) {
  // With a 1-conflict budget, SAT checks time out and count as incompatible;
  // the env must still terminate and pooled sets must remain satisfiable.
  const EnvFixture fx(102);
  if (fx.rare.size() < 4) GTEST_SKIP();
  core::DistinctSetPool pool;
  core::EnvConfig cfg;
  cfg.sat_conflict_budget = 1;
  core::CompatibleSetEnv env(fx.netlist, fx.rare, fx.matrix, cfg, &pool);
  sat::NetlistOracle oracle(fx.netlist);
  util::Rng rng(4);
  for (int episode = 0; episode < 10; ++episode) {
    env.reset(rng);
    while (true) {
      const auto& mask = env.action_mask();
      if (mask.none()) break;
      if (env.step(static_cast<std::uint32_t>(mask.find_first())).done) break;
    }
    std::vector<sat::Constraint> cs;
    for (const auto m : env.members()) cs.push_back({fx.rare[m].net, fx.rare[m].rare_value});
    if (!cs.empty()) ASSERT_TRUE(oracle.satisfiable(cs));
  }
}

TEST(EnvStress, RewardExponentsProduceMonotoneRewards) {
  const EnvFixture fx(103);
  if (fx.rare.size() < 4) GTEST_SKIP();
  for (const double exponent : {1.0, 1.5, 2.0, 3.0}) {
    core::EnvConfig cfg;
    cfg.reward_exponent = exponent;
    core::CompatibleSetEnv env(fx.netlist, fx.rare, fx.matrix, cfg, nullptr);
    util::Rng rng(5);
    env.reset(rng);
    float last_accept_reward = 0.0f;
    while (true) {
      const auto& mask = env.action_mask();
      if (mask.none()) break;
      const std::size_t before = env.members().size();
      const auto step = env.step(static_cast<std::uint32_t>(mask.find_first()));
      if (env.members().size() > before) {
        // Rewards for successive accepted actions must strictly increase for
        // any positive exponent (|s| grows).
        ASSERT_GT(step.reward, last_accept_reward) << "exponent " << exponent;
        last_accept_reward = step.reward;
      }
      if (step.done) break;
    }
  }
}

// ------------------------------------------------------ parser hardening ---

TEST(ParserHardening, EmptyInput) {
  const Netlist nl = netlist::read_bench_string("");
  EXPECT_EQ(nl.net_count(), 0u);
}

TEST(ParserHardening, CommentsAndBlankLinesOnly) {
  const Netlist nl = netlist::read_bench_string("# nothing\n\n   \n# more\n");
  EXPECT_EQ(nl.net_count(), 0u);
}

TEST(ParserHardening, WhitespaceTolerance) {
  const Netlist nl = netlist::read_bench_string(
      "  INPUT( a )  \n\tOUTPUT( y )\n y =  NAND( a ,a  ) # trailing\n");
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(nl.type(*nl.find("y")), GateType::Nand);
}

TEST(ParserHardening, CaseInsensitiveCells) {
  const Netlist nl = netlist::read_bench_string(
      "input(a)\noutput(y)\ny = nand(a, a)\n");
  EXPECT_EQ(nl.type(*nl.find("y")), GateType::Nand);
}

TEST(ParserHardening, MissingFileThrows) {
  EXPECT_THROW(netlist::read_bench_file("/nonexistent/path/x.bench"), Error);
}

// ----------------------------------------------- compatibility edge cases --

TEST(CompatibilityEdge, SingleRareNet) {
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(b.add_input());
  const NetId y = b.add_gate(GateType::And, ins, "y");
  b.mark_output(y);
  const Netlist nl = b.build();
  std::vector<analysis::RareNet> rare{{y, true, 1.0 / 32.0}};
  util::Rng rng(9);
  const auto matrix = analysis::build_compatibility(nl, rare, {}, rng);
  EXPECT_EQ(matrix.size(), 1u);
  EXPECT_TRUE(matrix.singleton_satisfiable(0));
  EXPECT_EQ(matrix.edge_count(), 0u);
}

TEST(CompatibilityEdge, ZeroSimPatternsForcesAllSat) {
  // With no pre-filter budget every pair goes to SAT; result must be the
  // same as with the pre-filter enabled.
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 10;
  p.n_outputs = 4;
  p.n_gates = 120;
  p.seed = 55;
  const Netlist nl = bench_gen::generate_random_circuit(p);
  util::Rng rng(10);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.2;
  auto rare = analysis::find_rare_nets(nl, rcfg, rng);
  if (rare.size() < 2) GTEST_SKIP();
  if (rare.size() > 12) rare.resize(12);

  analysis::CompatibilityBuildConfig no_prefilter;
  no_prefilter.sim_patterns = 0;
  analysis::CompatibilityBuildConfig with_prefilter;

  util::Rng rng_a(1);
  util::Rng rng_b(1);
  analysis::CompatibilityBuildStats stats_no;
  const auto m1 = analysis::build_compatibility(nl, rare, no_prefilter, rng_a,
                                                nullptr, &stats_no);
  const auto m2 = analysis::build_compatibility(nl, rare, with_prefilter, rng_b);
  EXPECT_EQ(stats_no.sim_resolved, 0u);
  for (std::uint32_t i = 0; i < rare.size(); ++i)
    for (std::uint32_t j = 0; j < rare.size(); ++j)
      ASSERT_EQ(m1.compatible(i, j), m2.compatible(i, j)) << i << "," << j;
}

}  // namespace
}  // namespace deterrent

#include <gtest/gtest.h>

#include "sim/pattern_io.hpp"
#include "util/rng.hpp"

namespace deterrent::sim {
namespace {

TEST(PatternIo, RoundTripRandomSets) {
  util::Rng rng(3);
  for (const std::size_t count : {0u, 1u, 63u, 64u, 65u, 200u}) {
    const auto original = PatternSet::random(17, count, rng);
    const auto back = read_patterns_string(write_patterns_string(original));
    ASSERT_EQ(back.pattern_count(), original.pattern_count()) << count;
    if (count > 0) ASSERT_EQ(back.input_count(), original.input_count());
    for (std::size_t p = 0; p < count; ++p)
      for (std::size_t i = 0; i < 17; ++i)
        ASSERT_EQ(back.bit(p, i), original.bit(p, i)) << p << "," << i;
  }
}

TEST(PatternIo, WritesHeaderComment) {
  util::Rng rng(5);
  const auto set = PatternSet::random(4, 3, rng);
  const std::string text = write_patterns_string(set);
  EXPECT_EQ(text.find("# deterrent patterns inputs=4 count=3"), 0u);
}

TEST(PatternIo, SkipsCommentsAndBlankLines) {
  const auto set = read_patterns_string("# header\n\n0101\n# middle\n1010\n\n");
  EXPECT_EQ(set.pattern_count(), 2u);
  EXPECT_EQ(set.input_count(), 4u);
  EXPECT_TRUE(set.bit(0, 1));
  EXPECT_FALSE(set.bit(1, 1));
}

TEST(PatternIo, HandlesCrLf) {
  const auto set = read_patterns_string("01\r\n10\r\n");
  EXPECT_EQ(set.pattern_count(), 2u);
  EXPECT_EQ(set.input_count(), 2u);
}

TEST(PatternIo, RejectsWidthMismatch) {
  EXPECT_THROW(read_patterns_string("0101\n01\n"), Error);
}

TEST(PatternIo, RejectsInvalidCharacters) {
  EXPECT_THROW(read_patterns_string("01x1\n"), Error);
}

TEST(PatternIo, MissingFileThrows) {
  EXPECT_THROW(read_patterns_file("/nonexistent/p.txt"), Error);
}

TEST(PatternIo, FileRoundTrip) {
  util::Rng rng(9);
  const auto original = PatternSet::random(9, 77, rng);
  const std::string path = ::testing::TempDir() + "/patterns_roundtrip.txt";
  write_patterns_file(original, path);
  const auto back = read_patterns_file(path);
  ASSERT_EQ(back.pattern_count(), 77u);
  for (std::size_t p = 0; p < 77; ++p)
    for (std::size_t i = 0; i < 9; ++i)
      ASSERT_EQ(back.bit(p, i), original.bit(p, i));
}

}  // namespace
}  // namespace deterrent::sim

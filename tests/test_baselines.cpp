#include <gtest/gtest.h>

#include "analysis/scoap.hpp"
#include "baselines/atpg_like.hpp"
#include "baselines/mero.hpp"
#include "baselines/tarmac.hpp"
#include "baselines/tgrl_like.hpp"
#include "bench_gen/random_circuit.hpp"
#include "sim/simulator.hpp"

namespace deterrent::baselines {
namespace {

using analysis::RareNet;
using netlist::Netlist;

struct Fixture {
  Netlist netlist;
  std::vector<RareNet> rare;
  analysis::CompatibilityMatrix matrix;
};

Fixture make_fixture(std::uint64_t seed, std::size_t gates = 220) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 16;
  p.n_outputs = 8;
  p.n_gates = gates;
  p.seed = seed;
  Fixture f{bench_gen::generate_random_circuit(p), {}, {}};
  util::Rng rng(seed + 7);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.15;
  rcfg.sim_patterns = 1 << 13;
  f.rare = analysis::find_rare_nets(f.netlist, rcfg, rng);
  f.matrix = analysis::build_compatibility(f.netlist, f.rare, {}, rng);
  return f;
}

// ------------------------------------------------------------ ATPG-like ----

TEST(AtpgLike, EveryExcitablRareNetGetsExcited) {
  const Fixture f = make_fixture(21);
  if (f.rare.size() < 5) GTEST_SKIP();
  util::Rng rng(1);
  const auto result = run_atpg_like(f.netlist, f.rare, rng);
  EXPECT_EQ(result.excited_rare_nets, f.rare.size());
  EXPECT_GT(result.patterns.pattern_count(), 0u);

  // Verify by simulation: each rare net is at its rare value under some pattern.
  sim::Simulator sim(f.netlist);
  std::vector<bool> excited(f.rare.size(), false);
  for (std::size_t p = 0; p < result.patterns.pattern_count(); ++p) {
    const auto values = sim.simulate_pattern(result.patterns.pattern(p));
    for (std::size_t i = 0; i < f.rare.size(); ++i)
      if (values[f.rare[i].net] == f.rare[i].rare_value) excited[i] = true;
  }
  for (std::size_t i = 0; i < f.rare.size(); ++i) EXPECT_TRUE(excited[i]) << i;
}

TEST(AtpgLike, FaultDroppingCompactsPatternCount) {
  const Fixture f = make_fixture(22);
  if (f.rare.size() < 10) GTEST_SKIP();
  util::Rng rng(2);
  const auto result = run_atpg_like(f.netlist, f.rare, rng);
  // Dropping must produce strictly fewer patterns than rare nets (one pattern
  // typically excites several); equality would mean dropping never fired.
  EXPECT_LT(result.patterns.pattern_count(), f.rare.size());
}

// ----------------------------------------------------------------- MERO ----

TEST(Mero, ReachesNDetectOnEasyCircuit) {
  const Fixture f = make_fixture(23, 120);
  if (f.rare.size() < 3) GTEST_SKIP();
  MeroConfig cfg;
  cfg.random_pool = 800;
  cfg.n_detect = 3;
  util::Rng rng(3);
  const auto result = run_mero(f.netlist, f.rare, cfg, rng);
  EXPECT_GT(result.patterns.pattern_count(), 0u);
  // Counts must be consistent with the emitted patterns.
  sim::Simulator sim(f.netlist);
  std::vector<std::size_t> recount(f.rare.size(), 0);
  for (std::size_t p = 0; p < result.patterns.pattern_count(); ++p) {
    const auto values = sim.simulate_pattern(result.patterns.pattern(p));
    for (std::size_t i = 0; i < f.rare.size(); ++i)
      if (values[f.rare[i].net] == f.rare[i].rare_value) ++recount[i];
  }
  for (std::size_t i = 0; i < f.rare.size(); ++i)
    EXPECT_EQ(recount[i], result.activation_counts[i]) << i;
}

TEST(Mero, RespectsMaxPatterns) {
  const Fixture f = make_fixture(24);
  if (f.rare.size() < 3) GTEST_SKIP();
  MeroConfig cfg;
  cfg.random_pool = 500;
  cfg.n_detect = 50;  // unreachable: forces the cap to bind
  cfg.max_patterns = 7;
  util::Rng rng(4);
  const auto result = run_mero(f.netlist, f.rare, cfg, rng);
  EXPECT_LE(result.patterns.pattern_count(), 7u);
  EXPECT_FALSE(result.n_detect_satisfied);
}

TEST(Mero, EveryEmittedPatternContributed) {
  const Fixture f = make_fixture(25, 150);
  if (f.rare.size() < 3) GTEST_SKIP();
  MeroConfig cfg;
  cfg.random_pool = 400;
  cfg.n_detect = 2;
  util::Rng rng(5);
  const auto result = run_mero(f.netlist, f.rare, cfg, rng);
  // MERO only keeps patterns that advanced N-detection, so every pattern
  // must activate at least one rare net.
  sim::Simulator sim(f.netlist);
  for (std::size_t p = 0; p < result.patterns.pattern_count(); ++p) {
    const auto values = sim.simulate_pattern(result.patterns.pattern(p));
    bool any = false;
    for (const auto& rn : f.rare) any = any || values[rn.net] == rn.rare_value;
    EXPECT_TRUE(any) << "pattern " << p << " activates nothing";
  }
}

TEST(Mero, CandidateChainingIsBitIdentical) {
  // Chained candidate seeding (incremental resimulate diffs between pool
  // patterns) must select exactly the same patterns as the unchained path,
  // with the same activation tallies.
  for (const std::uint64_t seed : {26u, 27u, 28u}) {
    const Fixture f = make_fixture(seed, 180);
    if (f.rare.size() < 3) continue;
    MeroConfig chained;
    chained.random_pool = 400;
    chained.n_detect = 3;
    chained.chain_candidates = true;
    MeroConfig unchained = chained;
    unchained.chain_candidates = false;

    util::Rng rng_a(seed * 11);
    util::Rng rng_b(seed * 11);
    const auto a = run_mero(f.netlist, f.rare, chained, rng_a);
    const auto b = run_mero(f.netlist, f.rare, unchained, rng_b);

    ASSERT_EQ(a.patterns.pattern_count(), b.patterns.pattern_count()) << seed;
    for (std::size_t p = 0; p < a.patterns.pattern_count(); ++p)
      EXPECT_EQ(a.patterns.pattern(p), b.patterns.pattern(p)) << seed << " #" << p;
    EXPECT_EQ(a.activation_counts, b.activation_counts) << seed;
    EXPECT_EQ(a.n_detect_satisfied, b.n_detect_satisfied) << seed;
  }
}

// --------------------------------------------------------------- TARMAC ----

TEST(Tarmac, EmitsRequestedPatternCount) {
  const Fixture f = make_fixture(26);
  if (f.rare.size() < 5) GTEST_SKIP();
  TarmacConfig cfg;
  cfg.n_patterns = 12;
  util::Rng rng(6);
  const auto result = run_tarmac(f.netlist, f.rare, f.matrix, cfg, rng);
  EXPECT_EQ(result.patterns.pattern_count(), 12u);
  EXPECT_EQ(result.clique_sizes.size(), 12u);
  EXPECT_GE(result.max_clique_size, 1u);
}

TEST(Tarmac, PatternsRealizeTheirCliques) {
  // Each TARMAC pattern comes from a SAT model of its sampled clique, so the
  // number of simultaneously-at-rare-value nets must be >= the clique size.
  const Fixture f = make_fixture(27, 300);
  if (f.rare.size() < 5) GTEST_SKIP();
  TarmacConfig cfg;
  cfg.n_patterns = 8;
  util::Rng rng(7);
  const auto result = run_tarmac(f.netlist, f.rare, f.matrix, cfg, rng);
  sim::Simulator sim(f.netlist);
  for (std::size_t p = 0; p < result.patterns.pattern_count(); ++p) {
    const auto values = sim.simulate_pattern(result.patterns.pattern(p));
    std::size_t at_rare = 0;
    for (const auto& rn : f.rare)
      if (values[rn.net] == rn.rare_value) ++at_rare;
    EXPECT_GE(at_rare, result.clique_sizes[p]) << "pattern " << p;
  }
}

TEST(Tarmac, HandlesEmptyRareSet) {
  const Fixture f = make_fixture(28);
  const std::vector<RareNet> empty;
  const analysis::CompatibilityMatrix empty_matrix(0);
  TarmacConfig cfg;
  cfg.n_patterns = 5;
  util::Rng rng(8);
  const auto result = run_tarmac(f.netlist, empty, empty_matrix, cfg, rng);
  EXPECT_EQ(result.patterns.pattern_count(), 0u);
}

// ------------------------------------------------------------ TGRL-like ----

TEST(TgrlLike, EmitsRequestedCount) {
  const Fixture f = make_fixture(29);
  if (f.rare.size() < 5) GTEST_SKIP();
  const auto scoap = analysis::compute_scoap(f.netlist);
  TgrlLikeConfig cfg;
  cfg.n_patterns = 20;
  cfg.mutation_rounds = 3;
  util::Rng rng(9);
  const auto result = run_tgrl_like(f.netlist, f.rare, scoap, cfg, rng);
  EXPECT_EQ(result.patterns.pattern_count(), 20u);
  EXPECT_EQ(result.pattern_scores.size(), 20u);
}

TEST(TgrlLike, GuidedBeatsRandomOnRareActivation) {
  // The rareness-guided search must activate more rare-net instances than
  // uniform random patterns of the same budget.
  const Fixture f = make_fixture(30, 320);
  if (f.rare.size() < 8) GTEST_SKIP();
  const auto scoap = analysis::compute_scoap(f.netlist);
  TgrlLikeConfig cfg;
  cfg.n_patterns = 40;
  cfg.mutation_rounds = 4;
  util::Rng rng(10);
  const auto guided = run_tgrl_like(f.netlist, f.rare, scoap, cfg, rng);
  const auto random = sim::PatternSet::random(f.netlist.inputs().size(), 40, rng);

  auto total_activations = [&](const sim::PatternSet& set) {
    sim::Simulator sim(f.netlist);
    std::size_t total = 0;
    for (std::size_t p = 0; p < set.pattern_count(); ++p) {
      const auto values = sim.simulate_pattern(set.pattern(p));
      for (const auto& rn : f.rare)
        if (values[rn.net] == rn.rare_value) ++total;
    }
    return total;
  };
  EXPECT_GT(total_activations(guided.patterns), total_activations(random));
}

}  // namespace
}  // namespace deterrent::baselines

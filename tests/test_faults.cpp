// util::faults / util::WatchdogScope / ThreadPool failure-containment unit
// tests: deterministic firing, the DETERRENT_FAULTS grammar, hang-to-timeout
// conversion, and exception propagation out of pool workers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/assert.hpp"
#include "util/faults.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "util/watchdog.hpp"

namespace deterrent::util {
namespace {

/// Every test leaves the process-wide registry disarmed, pass or fail.
struct DisarmGuard {
  ~DisarmGuard() { faults::disarm_all(); }
};

TEST(Faults, DisarmedByDefaultAndCheap) {
  faults::disarm_all();
  EXPECT_FALSE(faults::armed());
  // A disarmed fault point is a no-op: no counting, no firing.
  for (int i = 0; i < 1000; ++i) DETERRENT_FAULT_POINT("sat.query");
  EXPECT_EQ(faults::hit_count("sat.query"), 0u);
  EXPECT_EQ(faults::fired_count("sat.query"), 0u);
}

TEST(Faults, ThrowOnNthHitExactly) {
  DisarmGuard guard;
  faults::FaultSpec spec;
  spec.action = faults::Action::Throw;
  spec.nth = 3;
  faults::arm("sat.query", spec);
  EXPECT_TRUE(faults::armed());

  DETERRENT_FAULT_POINT("sat.query");
  DETERRENT_FAULT_POINT("sat.query");
  EXPECT_THROW(DETERRENT_FAULT_POINT("sat.query"), FaultInjectedError);
  DETERRENT_FAULT_POINT("sat.query");  // only the Nth hit fires
  EXPECT_EQ(faults::hit_count("sat.query"), 4u);
  EXPECT_EQ(faults::fired_count("sat.query"), 1u);
  // Other sites stay untouched.
  DETERRENT_FAULT_POINT("threadpool.task");
  EXPECT_EQ(faults::fired_count("threadpool.task"), 0u);

  faults::disarm_all();
  EXPECT_FALSE(faults::armed());
  EXPECT_EQ(faults::hit_count("sat.query"), 0u);
}

TEST(Faults, ProbabilisticFiringIsSeedDeterministic) {
  DisarmGuard guard;
  const auto fired_pattern = [](std::uint64_t seed) {
    faults::disarm_all();
    faults::FaultSpec spec;
    spec.action = faults::Action::Throw;
    spec.probability = 0.3;
    faults::arm("sat.query", spec, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      bool threw = false;
      try {
        DETERRENT_FAULT_POINT("sat.query");
      } catch (const FaultInjectedError&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };
  const auto a = fired_pattern(42);
  const auto b = fired_pattern(42);
  EXPECT_EQ(a, b);  // same seed → identical hit numbers fire
  std::size_t n_fired = 0;
  for (const bool f : a) n_fired += f ? 1 : 0;
  EXPECT_GT(n_fired, 20u);  // p=0.3 over 200 hits: ~60 expected
  EXPECT_LT(n_fired, 120u);
  EXPECT_NE(a, fired_pattern(43));  // ~zero chance of colliding
}

TEST(Faults, GrammarParsesAndArms) {
  DisarmGuard guard;
  faults::arm_from_string(
      "seed=7;sat.query=throw@2;serialize.write_artifact=torn-flip@1;"
      "threadpool.task=throw%0.5;pipeline.stage_boundary=hang@1:10");
  EXPECT_TRUE(faults::armed());
  DETERRENT_FAULT_POINT("sat.query");
  EXPECT_THROW(DETERRENT_FAULT_POINT("sat.query"), FaultInjectedError);
  // A short hang with no watchdog resolves on its own.
  DETERRENT_FAULT_POINT("pipeline.stage_boundary");
  EXPECT_EQ(faults::fired_count("pipeline.stage_boundary"), 1u);
}

TEST(Faults, MalformedGrammarThrowsPermanentError) {
  DisarmGuard guard;
  for (const char* bad :
       {"sat.query", "sat.query=", "sat.query=explode@1", "sat.query=throw@",
        "sat.query=throw@x", "seed=notanumber", "sat.query=throw%1.5",
        "sat.query=torn-flip%0.5", "=throw@1"}) {
    faults::disarm_all();
    EXPECT_THROW(faults::arm_from_string(bad), PermanentError) << bad;
  }
}

TEST(Faults, TornActionsAreInertAtPlainSites) {
  DisarmGuard guard;
  faults::FaultSpec spec;
  spec.action = faults::Action::TornTruncate;
  spec.nth = 1;
  faults::arm("sat.query", spec);
  // Torn writes only mean something to writers (on_write); a plain site
  // counts the hit and carries on.
  EXPECT_NO_THROW(DETERRENT_FAULT_POINT("sat.query"));
  EXPECT_EQ(faults::hit_count("sat.query"), 1u);
}

TEST(Faults, KnownSitesCoverTheCompiledRegistry) {
  const auto& sites = faults::known_sites();
  EXPECT_EQ(sites.size(), 8u);
  for (const char* expected :
       {"serialize.write_artifact", "session.load_artifact", "sat.query",
        "sat.portfolio.share", "pipeline.stage_boundary", "threadpool.task",
        "cache.fetch", "cache.store"}) {
    bool found = false;
    for (const auto& s : sites) found = found || s == expected;
    EXPECT_TRUE(found) << expected;
  }
}

// ------------------------------------------------------------ watchdog -----

TEST(Watchdog, PollThrowsPastDeadline) {
  EXPECT_FALSE(WatchdogScope::current().has_value());
  WatchdogScope scope(0.02);
  EXPECT_TRUE(WatchdogScope::current().has_value());
  EXPECT_NO_THROW(WatchdogScope::poll("test"));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(WatchdogScope::expired());
  EXPECT_THROW(WatchdogScope::poll("test"), TimeoutError);
}

TEST(Watchdog, ZeroIsUnlimitedAndNestedScopesOnlyTighten) {
  WatchdogScope unlimited(0.0);
  EXPECT_FALSE(WatchdogScope::current().has_value());
  {
    WatchdogScope outer(60.0);
    const auto outer_deadline = WatchdogScope::current();
    {
      WatchdogScope inner(0.001);
      ASSERT_TRUE(WatchdogScope::current().has_value());
      EXPECT_LT(*WatchdogScope::current(), *outer_deadline);
      {
        // A looser nested scope must not extend the tighter deadline.
        WatchdogScope loose(120.0);
        EXPECT_LE(*WatchdogScope::current(), *outer_deadline);
      }
    }
    EXPECT_EQ(WatchdogScope::current(), outer_deadline);
  }
  EXPECT_FALSE(WatchdogScope::current().has_value());
}

TEST(Watchdog, HangFaultConvertsToTimeout) {
  DisarmGuard guard;
  faults::FaultSpec spec;
  spec.action = faults::Action::Hang;
  spec.nth = 1;
  spec.hang_ms = 60'000;  // would stall a minute without a watchdog
  faults::arm("sat.query", spec);

  WatchdogScope scope(0.05);
  util::Stopwatch watch;
  EXPECT_THROW(DETERRENT_FAULT_POINT("sat.query"), TimeoutError);
  EXPECT_LT(watch.elapsed_seconds(), 5.0);  // woke at the deadline, not the hang
}

// ---------------------------------------------------------- thread pool ----

TEST(ThreadPool, TaskExceptionRethrownAtWaitIdleAndPoolSurvives) {
  ThreadPool pool(2);
  pool.submit([] { throw TransientError("boom"); });
  EXPECT_THROW(pool.wait_idle(), TransientError);

  // The pool is reusable after a failed batch, and the error does not stick.
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ParallelForPropagatesFirstError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 13) throw PermanentError("unlucky");
                                 }),
               PermanentError);
}

TEST(ThreadPool, WorkersAdoptSubmitterWatchdogDeadline) {
  ThreadPool pool(2);
  WatchdogScope scope(0.05);
  pool.submit([] {
    for (int i = 0; i < 1000; ++i) {
      WatchdogScope::poll("worker");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  EXPECT_THROW(pool.wait_idle(), TimeoutError);
}

TEST(ThreadPool, InjectedTaskFaultSurfacesOnSubmitter) {
  DisarmGuard guard;
  faults::FaultSpec spec;
  spec.action = faults::Action::Throw;
  spec.nth = 2;
  faults::arm("threadpool.task", spec);

  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) pool.submit([&ran] { ++ran; });
  EXPECT_THROW(pool.wait_idle(), FaultInjectedError);
  EXPECT_EQ(faults::fired_count("threadpool.task"), 1u);
  EXPECT_EQ(ran.load(), 3);  // the faulted task never ran its body
}

}  // namespace
}  // namespace deterrent::util

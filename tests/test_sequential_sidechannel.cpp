// Tests for the cycle-accurate sequential simulator (including executing a
// small program on the generated MIPS16-like processor netlist) and the
// side-channel switching-activity analyzer (§1.2's footprint claim).
#include <gtest/gtest.h>

#include "bench_gen/mips16.hpp"
#include "bench_gen/random_circuit.hpp"
#include "netlist/bench_io.hpp"
#include "sim/sequential.hpp"
#include "sim/simulator.hpp"
#include "trojan/side_channel.hpp"

namespace deterrent {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::NetlistBuilder;
using netlist::NetId;

// ----------------------------------------------------------- sequential ----

TEST(SequentialSim, ToggleFlipFlop) {
  // q <= NOT(q): a divide-by-two toggle.
  NetlistBuilder b;
  const NetId q = b.add_dff(netlist::kNoNet, "q");
  const NetId nq = b.add_gate(GateType::Not, {q}, "nq");
  b.set_dff_input(q, nq);
  b.mark_output(q);
  const Netlist nl = b.build();

  sim::SequentialSimulator sim(nl);
  sim.reset(false);
  const sim::Pattern no_inputs(0);
  for (int cycle = 0; cycle < 8; ++cycle) {
    const bool before = sim.state(q);
    sim.step(no_inputs);
    EXPECT_EQ(sim.state(q), !before) << "cycle " << cycle;
  }
  EXPECT_EQ(sim.cycle_count(), 8u);
}

TEST(SequentialSim, ShiftRegister) {
  NetlistBuilder b;
  const NetId din = b.add_input("din");
  const NetId q0 = b.add_dff(din, "q0");
  const NetId q1 = b.add_dff(q0, "q1");
  const NetId q2 = b.add_dff(q1, "q2");
  b.mark_output(q2);
  const Netlist nl = b.build();

  sim::SequentialSimulator sim(nl);
  sim.reset(false);
  const bool stream[] = {true, false, true, true, false, false};
  std::vector<bool> seen;
  for (const bool bit : stream) {
    sim::Pattern p(1);
    p.set(0, bit);
    sim.step(p);
    seen.push_back(sim.state(q2));
  }
  // q2 lags din by 3 cycles.
  EXPECT_FALSE(seen[0]);
  EXPECT_FALSE(seen[1]);
  EXPECT_TRUE(seen[2]);   // stream[0]
  EXPECT_FALSE(seen[3]);  // stream[1]
  EXPECT_TRUE(seen[4]);   // stream[2]
}

TEST(SequentialSim, ResetAndSetState) {
  NetlistBuilder b;
  const NetId q = b.add_dff(netlist::kNoNet, "q");
  b.set_dff_input(q, q);  // hold
  b.mark_output(q);
  const Netlist nl = b.build();
  sim::SequentialSimulator sim(nl);
  sim.reset(true);
  EXPECT_TRUE(sim.state(q));
  sim.set_state(q, false);
  EXPECT_FALSE(sim.state(q));
  sim.step(sim::Pattern(0));
  EXPECT_FALSE(sim.state(q));  // hold keeps value
}

TEST(SequentialSim, CounterOnRandomSequentialCircuit) {
  // Smoke: a generated sequential circuit steps for many cycles without
  // violating any internal invariant, and values() stays sized correctly.
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 8;
  p.n_outputs = 4;
  p.n_gates = 150;
  p.n_dffs = 12;
  p.seed = 77;
  const Netlist nl = bench_gen::generate_random_circuit(p);
  sim::SequentialSimulator sim(nl);
  sim.reset();
  util::Rng rng(5);
  for (int cycle = 0; cycle < 50; ++cycle) {
    sim::Pattern inputs(8);
    for (int i = 0; i < 8; ++i) inputs.set(i, rng.bernoulli(0.5));
    const auto& values = sim.step(inputs);
    ASSERT_EQ(values.size(), nl.net_count());
  }
  EXPECT_EQ(sim.cycle_count(), 50u);
}

/// Executes a 4-instruction program on the MIPS16-like processor, cycle by
/// cycle, feeding the instruction stream through the instruction port —
/// end-to-end evidence that the generated netlist is a working CPU.
TEST(SequentialSim, Mips16RunsAProgram) {
  const Netlist cpu = bench_gen::generate_mips16({});
  sim::SequentialSimulator sim(cpu);
  sim.reset(false);  // PC=0, all regs 0

  auto encode = [](unsigned op, unsigned rs, unsigned rt, unsigned rd) {
    return static_cast<std::uint16_t>((op << 12) | (rs << 8) | (rt << 4) | rd);
  };
  constexpr unsigned kAdd = 0, kMul = 9, kAddi = 13;

  // Program (destination is the rd/imm field; ADDI writes r[imm]):
  //   ADDI r3, r0, 3     -> r3 = 3
  //   ADD  r2 = r3 + r3  -> r2 = 6
  //   MUL  r5 = r2 * r3  -> r5 = 18, LO = 18
  //   ADD  r6 = r5 + r2  -> r6 = 24
  const std::uint16_t program[] = {
      encode(kAddi, 0, 0, 3),
      encode(kAdd, 3, 3, 2),
      encode(kMul, 2, 3, 5),
      encode(kAdd, 5, 2, 6),
  };

  auto read_reg = [&](unsigned r) {
    std::uint16_t value = 0;
    for (unsigned bit = 0; bit < 16; ++bit) {
      const auto q = cpu.find("r" + std::to_string(r) + "_" + std::to_string(bit));
      EXPECT_TRUE(q.has_value());
      value |= static_cast<std::uint16_t>(sim.state(*q)) << bit;
    }
    return value;
  };
  auto read_pc = [&]() {
    std::uint16_t value = 0;
    for (unsigned bit = 0; bit < 16; ++bit)
      value |= static_cast<std::uint16_t>(sim.state(*cpu.find("pc" + std::to_string(bit))))
               << bit;
    return value;
  };

  for (const std::uint16_t instr : program) {
    sim::Pattern inputs(32);  // instr[16] + mem_rdata[16]
    for (unsigned bit = 0; bit < 16; ++bit) inputs.set(bit, (instr >> bit) & 1u);
    sim.step(inputs);
  }

  EXPECT_EQ(read_reg(3), 3u);
  EXPECT_EQ(read_reg(2), 6u);
  EXPECT_EQ(read_reg(5), 18u);
  EXPECT_EQ(read_reg(6), 24u);
  EXPECT_EQ(read_pc(), 4u);  // four sequential instructions
}

// ---------------------------------------------------------- side channel ---

TEST(SideChannel, SwitchingActivityCountsTransitions) {
  const Netlist nl = netlist::read_bench_string(
      "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  sim::PatternSet set(1);
  sim::Pattern p0(1);            // a=0 → y=1
  sim::Pattern p1(1);
  p1.set(0);                     // a=1 → y=0
  set.push(p0);
  set.push(p1);
  set.push(p1);
  const auto toggles = trojan::switching_activity(nl, set);
  ASSERT_EQ(toggles.size(), 3u);
  EXPECT_EQ(toggles[0], 1u);  // from all-zero state: y rises
  EXPECT_EQ(toggles[1], 2u);  // a and y both flip
  EXPECT_EQ(toggles[2], 0u);  // repeat pattern: no toggles
}

TEST(SideChannel, SwitchingActivityMatchesNaivePerPatternSimulation) {
  // The batch-engine implementation (toggle masks recovered bit-parallel
  // from adjacent lanes, including across block boundaries) must agree with
  // a pattern-at-a-time count for every transition. 130 patterns spans two
  // full blocks plus a ragged third.
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 9;
  p.n_outputs = 5;
  p.n_gates = 120;
  p.seed = 21;
  const Netlist nl = bench_gen::generate_random_circuit(p);
  util::Rng rng(6);
  const auto patterns = sim::PatternSet::random(nl.inputs().size(), 130, rng);

  const auto got = trojan::switching_activity(nl, patterns);
  ASSERT_EQ(got.size(), patterns.pattern_count());
  std::vector<bool> previous(nl.net_count(), false);
  for (std::size_t pat = 0; pat < patterns.pattern_count(); ++pat) {
    std::vector<bool> inputs(nl.inputs().size());
    for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = patterns.bit(pat, i);
    const auto values = sim::evaluate_naive(nl, inputs);
    std::size_t want = 0;
    for (std::size_t net = 0; net < values.size(); ++net)
      want += values[net] != previous[net];
    EXPECT_EQ(got[pat], want) << "pattern " << pat;
    previous = values;
  }
}

TEST(SideChannel, SwitchingActivityOnSequentialDesignCountsStateToggles) {
  // Sequential designs execute the pattern set as a per-cycle stimulus
  // through the sequential engine; the counts must match a facade-driven
  // cycle-by-cycle recount (and include flip-flop toggles).
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 6;
  p.n_outputs = 3;
  p.n_gates = 100;
  p.n_dffs = 8;
  p.seed = 13;
  const Netlist nl = bench_gen::generate_random_circuit(p);
  ASSERT_TRUE(nl.is_sequential());
  util::Rng rng(9);
  const auto patterns = sim::PatternSet::random(nl.inputs().size(), 40, rng);

  const auto got = trojan::switching_activity(nl, patterns);
  ASSERT_EQ(got.size(), patterns.pattern_count());
  sim::SequentialSimulator sim(nl);
  sim.reset(false);
  std::vector<bool> previous(nl.net_count(), false);
  for (std::size_t cycle = 0; cycle < patterns.pattern_count(); ++cycle) {
    const auto& values = sim.step(patterns.pattern(cycle));
    std::size_t want = 0;
    for (NetId net = 0; net < nl.net_count(); ++net) {
      want += values.test(net) != previous[net];
      previous[net] = values.test(net);
    }
    EXPECT_EQ(got[cycle], want) << "cycle " << cycle;
  }
}

TEST(SideChannel, SequentialReportSplitsByTriggerActivation) {
  // End-to-end sequential side channel: a trojan on a shift-register design
  // whose trigger is a state bit — the report must attribute transitions on
  // the cycles where the trigger fires (and their exit edges) to the
  // triggered bucket.
  NetlistBuilder b;
  const NetId din = b.add_input("din");
  const NetId q0 = b.add_dff(din, "q0");
  const NetId q1 = b.add_dff(q0, "q1");
  const NetId host = b.add_gate(GateType::Or, {q0, din}, "host");
  std::vector<NetId> fan;
  for (int i = 0; i < 12; ++i)
    fan.push_back(b.add_gate(GateType::Xor, {host, i % 2 == 0 ? q1 : din}));
  for (const NetId f : fan) b.mark_output(f);
  b.mark_output(q1);
  const Netlist golden = b.build();

  trojan::Trojan ht;
  ht.trigger = {{q1, true, 0.25}};
  ht.payload_net = host;

  sim::PatternSet stimulus(1);
  for (int cycle = 0; cycle < 32; ++cycle) {
    sim::Pattern pat(1);
    pat.set(0, cycle % 8 == 0);  // a 1 reaches q1 two cycles later
    stimulus.push(pat);
  }
  const auto report = trojan::side_channel_report(golden, ht, stimulus);
  EXPECT_GT(report.triggered_transitions, 0u);
  EXPECT_GT(report.dormant_transitions, 0u);
  EXPECT_EQ(report.triggered_transitions + report.dormant_transitions,
            stimulus.pattern_count());
  EXPECT_GT(report.triggered_delta, 0.0);
}

TEST(SideChannel, DormantTrojanHasSmallFootprintTriggeredLarge) {
  // Golden: wide fanout from the payload net so the payload flip propagates.
  NetlistBuilder b;
  std::vector<NetId> ins;
  for (int i = 0; i < 6; ++i) ins.push_back(b.add_input());
  const NetId trig_src = b.add_gate(GateType::And, {ins[0], ins[1], ins[2], ins[3]}, "t");
  const NetId payload_host = b.add_gate(GateType::Or, {ins[4], ins[5]}, "host");
  std::vector<NetId> fan;
  for (int i = 0; i < 20; ++i)
    fan.push_back(b.add_gate(GateType::Xor, {payload_host, ins[static_cast<std::size_t>(i) % 6]}));
  for (const NetId f : fan) b.mark_output(f);
  b.mark_output(trig_src);
  const Netlist golden = b.build();

  trojan::Trojan ht;
  ht.trigger = {{trig_src, true, 1.0 / 16.0}};
  ht.payload_net = payload_host;

  // Pattern set: half dormant (trigger off), half alternating trigger on/off.
  sim::PatternSet patterns(6);
  util::Rng rng(3);
  for (int p = 0; p < 40; ++p) {
    sim::Pattern pat(6);
    const bool fire = p % 4 == 0;
    for (int i = 0; i < 4; ++i) pat.set(i, fire || rng.bernoulli(0.3));
    pat.set(4, rng.bernoulli(0.5));
    pat.set(5, rng.bernoulli(0.5));
    patterns.push(pat);
  }

  const auto report = trojan::side_channel_report(golden, ht, patterns);
  EXPECT_GT(report.triggered_transitions, 0u);
  EXPECT_GT(report.dormant_transitions, 0u);
  // §1.2: activation amplifies the footprint; dormant delta stays small.
  EXPECT_GT(report.triggered_delta, report.dormant_delta);
  EXPECT_LT(report.dormant_delta, 5.0);
  EXPECT_GT(report.amplification(), 1.0);
}

TEST(SideChannel, InfectedAverageAtLeastGolden) {
  bench_gen::RandomCircuitProfile p;
  p.n_inputs = 12;
  p.n_outputs = 6;
  p.n_gates = 200;
  p.seed = 11;
  const Netlist golden = bench_gen::generate_random_circuit(p);
  util::Rng rng(4);
  analysis::RareNetConfig rcfg;
  rcfg.threshold = 0.2;
  const auto rare = analysis::find_rare_nets(golden, rcfg, rng);
  if (rare.size() < 2) GTEST_SKIP();
  sat::NetlistOracle oracle(golden);
  trojan::TrojanSampleConfig tcfg;
  tcfg.width = 2;
  tcfg.count = 1;
  const auto trojans = trojan::sample_trojans(golden, rare, tcfg, oracle, rng);
  ASSERT_FALSE(trojans.empty());

  const auto patterns = sim::PatternSet::random(12, 200, rng);
  const auto report = trojan::side_channel_report(golden, trojans[0], patterns);
  // The extra trigger/payload logic can only add switched capacitance.
  EXPECT_GE(report.infected_avg_toggles, report.golden_avg_toggles);
}

}  // namespace
}  // namespace deterrent
